package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmalloc"
	"vmalloc/internal/journal"
)

func openSharded(t *testing.T, dir string, nodes []vmalloc.Node, shards int) *ShardedStore {
	t.Helper()
	s, err := OpenSharded(dir, nodes, &Options{
		Fsync:  journal.FsyncNone,
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shardedStateJSON(t *testing.T, s *ShardedStore) []byte {
	t.Helper()
	_, data, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// applyShardedOps drives tape[from:to] against a sharded store, mirroring
// applyOps for the unsharded one.
func applyShardedOps(t *testing.T, s *ShardedStore, tape []op, from, to int, live *[]int) {
	t.Helper()
	for i := from; i < to; i++ {
		o := &tape[i]
		switch o.kind {
		case "add":
			id, _, err := s.AddWithEstimate(o.trueSvc, o.estSvc)
			if err == nil {
				*live = append(*live, id)
			} else if err != ErrRejected {
				t.Fatalf("op %d add: %v", i, err)
			}
		case "remove":
			if len(*live) == 0 {
				continue
			}
			idx := o.pick % len(*live)
			id := (*live)[idx]
			ok, err := s.Remove(id)
			if err != nil || !ok {
				t.Fatalf("op %d remove %d: ok=%v err=%v", i, id, ok, err)
			}
			*live = append((*live)[:idx], (*live)[idx+1:]...)
		case "update":
			if len(*live) == 0 {
				continue
			}
			id := (*live)[o.pick%len(*live)]
			if err := s.UpdateNeeds(id, o.needs[0], o.needs[1], o.needs[2], o.needs[3]); err != nil {
				t.Fatalf("op %d update %d: %v", i, id, err)
			}
		case "threshold":
			if err := s.SetThreshold(o.threshold); err != nil {
				t.Fatalf("op %d threshold: %v", i, err)
			}
		case "realloc":
			if _, err := s.Reallocate(); err != nil {
				t.Fatalf("op %d realloc: %v", i, err)
			}
		case "repair":
			if _, err := s.Repair(o.budget); err != nil {
				t.Fatalf("op %d repair: %v", i, err)
			}
		}
	}
}

// TestShardedStoreKillRecovery is the sharded crash acceptance test: a
// two-shard store is killed without a final checkpoint (the kill -9
// analog), reopened, and must recover the exact pre-crash merged state from
// per-shard WAL replay — then keep serving.
func TestShardedStoreKillRecovery(t *testing.T) {
	dir := t.TempDir()
	nodes := testNodes(8, 41)
	tape := opTape(160, 42)
	var live []int

	s := openSharded(t, dir, nodes, 2)
	applyShardedOps(t, s, tape, 0, 120, &live)
	want := append([]byte(nil), shardedStateJSON(t, s)...)
	wantStats := s.Stats()
	s.Kill()

	r := openSharded(t, dir, nil, 0) // recovered boot: platform and K from the manifest
	defer r.Close()
	if len(r.RecoveryWarnings) != 0 {
		t.Fatalf("clean-tape kill produced recovery warnings: %v", r.RecoveryWarnings)
	}
	if got := shardedStateJSON(t, r); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from pre-kill state:\npre:  %s\npost: %s", want, got)
	}
	rstats := r.Stats()
	if rstats.Services != wantStats.Services {
		t.Fatalf("recovered %d services, want %d", rstats.Services, wantStats.Services)
	}
	if rstats.Shards != 2 {
		t.Fatalf("recovered %d shards, want 2", rstats.Shards)
	}
	if rstats.Replayed == 0 {
		t.Fatal("kill -9 recovery replayed no records; the WAL tail was lost")
	}
	// The recovered store must keep serving the rest of the tape.
	applyShardedOps(t, r, tape, 120, len(tape), &live)
	if _, err := r.Reallocate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStoreCleanReopen checks Close-then-Open round-trips the merged
// state bit for bit with zero replay (the close-time checkpoint covers the
// log) and keeps per-shard stats consistent.
func TestShardedStoreCleanReopen(t *testing.T) {
	dir := t.TempDir()
	nodes := testNodes(8, 43)
	tape := opTape(120, 44)
	var live []int

	s := openSharded(t, dir, nodes, 2)
	applyShardedOps(t, s, tape, 0, len(tape), &live)
	want := append([]byte(nil), shardedStateJSON(t, s)...)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openSharded(t, dir, nil, 0)
	defer r.Close()
	if got := shardedStateJSON(t, r); !bytes.Equal(got, want) {
		t.Fatalf("reopened state differs")
	}
	if r.Stats().Replayed != 0 {
		t.Fatalf("clean reopen replayed %d records, want 0", r.Stats().Replayed)
	}
	stats, err := r.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += st.Services
	}
	if total != r.Stats().Services {
		t.Fatalf("shard stats count %d, store has %d", total, r.Stats().Services)
	}
}

// TestShardedStoreShardCountConflict pins the fail-fast on -shards
// disagreeing with a recovered manifest.
func TestShardedStoreShardCountConflict(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir, testNodes(8, 45), 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSharded(dir, nil, &Options{Fsync: journal.FsyncNone, Shards: 4})
	if err == nil || !strings.Contains(err.Error(), "conflicts with recovered manifest") {
		t.Fatalf("shard-count conflict not detected: %v", err)
	}
	recovered, m, derr := DirRecovered(dir)
	if derr != nil || !recovered || m == nil || m.Shards != 2 {
		t.Fatalf("DirRecovered = (%v, %+v, %v), want sharded manifest with 2 shards", recovered, m, derr)
	}
	if d := DescribeDir(dir); !strings.Contains(d, "2 shards") {
		t.Fatalf("DescribeDir = %q", d)
	}
}

// TestDirRecoveredUnsharded covers the unsharded detection path used by
// vmallocd's flag-conflict check.
func TestDirRecoveredUnsharded(t *testing.T) {
	dir := t.TempDir()
	if rec, _, err := DirRecovered(dir); err != nil || rec {
		t.Fatalf("empty dir reported recovered=%v err=%v", rec, err)
	}
	s, err := Open(dir, testNodes(4, 46), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Add(smallService(0.05)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, m, err := DirRecovered(dir)
	if err != nil || !rec || m != nil {
		t.Fatalf("DirRecovered = (%v, %v, %v), want unsharded recovery", rec, m, err)
	}
	if d := DescribeDir(dir); !strings.Contains(d, "4 nodes") {
		t.Fatalf("DescribeDir = %q", d)
	}
}

// TestShardedHTTP serves a two-shard store over the shared handler and
// exercises the sharded-only surface.
func TestShardedHTTP(t *testing.T) {
	s := openSharded(t, t.TempDir(), testNodes(8, 47), 2)
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })

	var add addResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/services",
		addRequest{True: ptrService(smallService(0.05))}, &add); code != http.StatusCreated {
		t.Fatalf("add: %d %s", code, body)
	}
	if code, body := doJSON(t, "POST", ts.URL+"/v1/reallocate", nil, nil); code != http.StatusOK {
		t.Fatalf("reallocate: %d %s", code, body)
	}
	var shards []vmalloc.ShardStat
	if code, body := doJSON(t, "GET", ts.URL+"/v1/shards", nil, &shards); code != http.StatusOK {
		t.Fatalf("shards: %d %s", code, body)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(shards))
	}
	if shards[0].Services+shards[1].Services != 1 {
		t.Fatalf("shard stats don't cover the admitted service: %+v", shards)
	}
	var stats Stats
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK || stats.Shards != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func ptrService(s vmalloc.Service) *vmalloc.Service { return &s }

// TestHTTPTrailingGarbageRejected pins the decodeBody hardening: a body
// holding two JSON values must be a 400, not a silently half-read request.
func TestHTTPTrailingGarbageRejected(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"budget":1}{"budget":9}`,
		`{"budget":1} trailing`,
		`{"budget":1}]`,
	} {
		resp, err := http.Post(ts.URL+"/v1/repair", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// The threshold endpoint uses the required-body path; same rule.
	resp, err := http.Post(ts.URL+"/v1/reallocate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reallocate after rejected repairs: %d", resp.StatusCode)
	}
}

// TestHTTPRepairEmptyChunkedBody pins the other half of the decodeBody fix:
// an empty chunked body (ContentLength -1) selects the default budget
// instead of erroring.
func TestHTTPRepairEmptyChunkedBody(t *testing.T) {
	_, ts := newTestServer(t)
	req, err := http.NewRequest("POST", ts.URL+"/v1/repair", emptyChunkedBody{})
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = -1 // forces chunked transfer encoding
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty chunked repair body: status %d, want 200", resp.StatusCode)
	}
}

// emptyChunkedBody is a non-nil reader the http client cannot size, so the
// request goes out chunked with an empty body.
type emptyChunkedBody struct{}

func (emptyChunkedBody) Read(p []byte) (int, error) { return 0, io.EOF }
