// Package server is the durable tier of the allocation system: a Store that
// couples a vmalloc.Cluster to a write-ahead journal, and an HTTP/JSON
// handler (vmallocd) that serves the full Cluster API over it.
//
// Durability follows the log-the-decision design of internal/journal: every
// applied mutation is captured through the cluster's event-hook seam,
// encoded as a journal record and group-committed. The commit pipeline
// serializes *application* (one mutation at a time holds the state lock)
// but overlaps *durability*: the lock is released before waiting for the
// fsync, so concurrent requests batch into a single disk flush. Reads are
// served from an immutable published snapshot that is re-derived lazily
// after mutations, so they never wait on the solver or the disk.
//
// Recovery is snapshot + tail replay: the newest snapshot that validates is
// restored via vmalloc.RestoreCluster, then the journal tail re-applies
// recorded decisions (RestoreAdd/ApplyPlacement — no solver re-runs), which
// reconstructs the pre-crash state bit for bit.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc"
	"vmalloc/internal/faultfs"
	"vmalloc/internal/journal"
	"vmalloc/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Cluster tunes the underlying allocation engine (solver roster,
	// parallelism, LP bound). When recovering, the threshold inside the
	// recovered state wins over Cluster.Threshold.
	Cluster vmalloc.ClusterOptions
	// SegmentBytes, Fsync, KeepSnapshots, ChainInterval and FS pass through
	// to the journal. FS (nil for the real filesystem) is the fault-injection
	// seam: crash-safety tests run the whole store over a faultfs.Injector.
	SegmentBytes  int64
	Fsync         journal.FsyncMode
	KeepSnapshots int
	ChainInterval int
	FS            faultfs.FS
	// SnapshotEvery writes a state snapshot (and compacts the log) after
	// this many journaled records; 0 selects 4096, negative disables
	// automatic snapshots.
	SnapshotEvery int
	// InitialState bootstraps a fresh directory from a saved state file
	// instead of an empty cluster (ignored when the directory already
	// holds a journal; unsupported by sharded stores).
	InitialState *vmalloc.ClusterState
	// Obs receives the store's operational telemetry: commit-pipeline spans
	// attach to traces carried by request contexts, and every epoch pushes
	// a record (phase timing plus solver counters) into Obs.Epochs. nil
	// disables both at zero cost.
	Obs *obs.Observer

	// Sharded-store knobs (OpenSharded only). Shards is the placement
	// domain count on first boot (0 selects 1; later boots take it from
	// the manifest and only check for conflicts); ShardSeed fixes the
	// admission hash; RebalanceGap/RebalanceMoves tune the cross-shard
	// rebalance pass as in vmalloc.ShardedOptions.
	Shards         int
	ShardSeed      int64
	RebalanceGap   float64
	RebalanceMoves int
}

func (o *Options) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return 4096
	}
	return o.SnapshotEvery
}

// Stats is a point-in-time counter snapshot of a Store.
type Stats struct {
	Services     int     `json:"services"`
	Threshold    float64 `json:"threshold"`
	LastSeq      uint64  `json:"last_seq"`
	SnapshotSeq  uint64  `json:"snapshot_seq"`
	Records      uint64  `json:"records"`
	Snapshots    uint64  `json:"snapshots"`
	Adds         uint64  `json:"adds"`
	Batches      uint64  `json:"batches"`
	Rejected     uint64  `json:"rejected"`
	Removes      uint64  `json:"removes"`
	NeedUpdates  uint64  `json:"need_updates"`
	Epochs       uint64  `json:"epochs"`
	FailedEpochs uint64  `json:"failed_epochs"`
	Migrations   uint64  `json:"migrations"`
	LastMinYield float64 `json:"last_min_yield"`
	// Boot-time recovery facts.
	Replayed       int `json:"replayed"`
	TruncatedBytes int `json:"truncated_bytes"`
	// Shards is the placement-domain count (0 for an unsharded store).
	Shards int `json:"shards,omitempty"`
}

// AddSpec is one service of a bulk admission: the true descriptor and the
// scheduler-visible estimate.
type AddSpec struct {
	True, Est vmalloc.Service
}

// AddOutcome is the per-entry result of AddBatch. Err == nil means the entry
// was admitted and ID/Node are valid; otherwise Err matches ErrRejected (no
// node could host it) or ErrInvalid (structural validation failed) and Node
// is -1.
type AddOutcome struct {
	ID   int
	Node int
	Err  error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("server: store closed")

// ErrRejected is returned by Add when no node can host the service.
var ErrRejected = errors.New("server: admission rejected: no node can host the service")

// ErrInvalid wraps structural validation failures of client-supplied input
// (malformed vectors, bad thresholds); match with errors.Is to distinguish
// the client's fault from store/journal failures.
var ErrInvalid = errors.New("server: invalid input")

// invalid wraps a cluster validation error so handlers can classify it
// without substring matching.
func invalid(err error) error {
	return fmt.Errorf("%w: %s", ErrInvalid, err)
}

// Store is a journaled cluster. All mutations are durable when the call
// returns; reads come from published snapshots. Safe for concurrent use.
type Store struct {
	opts Options

	mu           sync.Mutex // serializes cluster access and journal enqueue order
	cluster      *vmalloc.Cluster
	j            *journal.Journal
	tickets      []*journal.Ticket // tickets enqueued by the hook during one mutation
	batch        *journal.Batch    // bulk-admission record group (AddBatch)
	batching     bool              // route hook events into batch instead of Enqueue
	batchErr     error             // first batch encode failure, surfaced after commit
	recordsSince int
	closed       bool
	stats        Stats

	version   atomic.Uint64 // bumped per applied mutation
	published atomic.Pointer[publishedState]
}

type publishedState struct {
	version uint64
	state   *vmalloc.ClusterState
	data    []byte
}

// DecodeState parses and validates a stable-JSON cluster state.
func DecodeState(data []byte) (*vmalloc.ClusterState, error) {
	var st vmalloc.ClusterState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("server: decoding state: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

// EncodeState renders a cluster state in the stable JSON form shared by
// snapshots, the HTTP API and the vmalloc CLI.
func EncodeState(st *vmalloc.ClusterState) ([]byte, error) {
	return json.Marshal(st)
}

// Open recovers (or bootstraps) the journaled cluster in dir. For a fresh
// directory, nodes (or opts.InitialState) defines the platform and a
// bootstrap snapshot is written immediately; for an existing one the
// platform comes from the recovered state and nodes is ignored. After a
// replay longer than the snapshot interval a fresh snapshot compacts the
// log right away.
func Open(dir string, nodes []vmalloc.Node, opts *Options) (*Store, error) {
	if opts == nil {
		opts = &Options{}
	}
	s := &Store{opts: *opts}
	jopts := journal.Options{
		Dir:              dir,
		SegmentBytes:     opts.SegmentBytes,
		Fsync:            opts.Fsync,
		KeepSnapshots:    opts.KeepSnapshots,
		ChainInterval:    opts.ChainInterval,
		FS:               opts.FS,
		ValidateSnapshot: func(b []byte) error { _, err := DecodeState(b); return err },
	}
	rc, err := journal.Recover(jopts)
	if err != nil {
		return nil, err
	}
	// No-op once rc.Journal() succeeds (the journal owns the directory lock
	// from then on); releases it on every earlier error path.
	defer rc.Close()
	info := rc.Info()
	bootstrap := false
	if info.Snapshot != nil {
		st, err := DecodeState(info.Snapshot)
		if err != nil {
			return nil, err // validated during Recover; unreachable in practice
		}
		s.cluster, err = vmalloc.RestoreCluster(st, &opts.Cluster)
		if err != nil {
			return nil, err
		}
	} else {
		bootstrap = true
		switch {
		case opts.InitialState != nil:
			s.cluster, err = vmalloc.RestoreCluster(opts.InitialState, &opts.Cluster)
		case len(nodes) > 0:
			s.cluster, err = vmalloc.NewCluster(nodes, &opts.Cluster)
		default:
			return nil, errors.New("server: fresh directory needs nodes or an initial state")
		}
		if err != nil {
			return nil, err
		}
	}
	if err := rc.Replay(func(r *journal.Record) error { return applyRecord(s.cluster, r) }); err != nil {
		return nil, err
	}
	s.j, err = rc.Journal()
	if err != nil {
		return nil, err
	}
	info = rc.Info()
	s.stats.Replayed = info.Replayed
	s.stats.TruncatedBytes = info.TruncatedBytes
	s.stats.SnapshotSeq = info.SnapshotSeq
	s.stats.Threshold = s.cluster.State().Threshold
	s.cluster.SetHook(s.onEvent)

	// A fresh directory must hold a snapshot before the first record: the
	// snapshot carries the platform, which records do not. A long replay is
	// compacted away immediately so the next boot is fast.
	if bootstrap || (opts.snapshotEvery() > 0 && info.Replayed >= opts.snapshotEvery()) {
		if _, err := s.Checkpoint(); err != nil {
			s.j.Close()
			return nil, err
		}
	}
	return s, nil
}

// applyRecord replays one journaled decision onto the cluster (the hook is
// not installed yet, so replay does not re-journal).
func applyRecord(c *vmalloc.Cluster, r *journal.Record) error {
	switch r.Op {
	case journal.OpAdd:
		return c.RestoreAdd(r.ID, r.Node, r.TrueSvc, r.EstSvc)
	case journal.OpRemove:
		if !c.Remove(r.ID) {
			return fmt.Errorf("server: replay: remove of unknown id %d (seq %d)", r.ID, r.Seq)
		}
		return nil
	case journal.OpUpdateNeeds:
		return c.UpdateNeeds(r.ID, r.Needs[0], r.Needs[1], r.Needs[2], r.Needs[3])
	case journal.OpSetThreshold:
		return c.SetThreshold(r.Threshold)
	case journal.OpEpoch:
		_, err := c.ApplyPlacement(r.IDs, r.Placement)
		return err
	}
	return fmt.Errorf("server: replay: unknown op %d (seq %d)", uint8(r.Op), r.Seq)
}

// onEvent is the cluster hook: it runs while the mutation holds s.mu, so
// enqueue order equals application order.
func (s *Store) onEvent(ev *vmalloc.ClusterEvent) {
	rec := &journal.Record{}
	switch ev.Op {
	case vmalloc.ClusterOpAdd:
		rec.Op, rec.ID, rec.Node = journal.OpAdd, ev.ID, ev.Node
		rec.TrueSvc, rec.EstSvc = *ev.TrueSvc, *ev.EstSvc
	case vmalloc.ClusterOpRemove:
		rec.Op, rec.ID = journal.OpRemove, ev.ID
	case vmalloc.ClusterOpUpdateNeeds:
		rec.Op, rec.ID = journal.OpUpdateNeeds, ev.ID
		rec.Needs = ev.Needs
	case vmalloc.ClusterOpSetThreshold:
		rec.Op, rec.Threshold = journal.OpSetThreshold, ev.Threshold
	case vmalloc.ClusterOpEpoch:
		rec.Op, rec.Repair, rec.Budget = journal.OpEpoch, ev.Repair, ev.Budget
		rec.IDs, rec.Placement = ev.IDs, ev.Placement
	default:
		return
	}
	// Enqueue and Batch.Add both encode synchronously, so aliasing engine
	// buffers is safe. During a bulk admission the records accumulate in the
	// batch and commit as one group sharing a single fsync.
	if s.batching {
		if err := s.batch.Add(rec); err != nil && s.batchErr == nil {
			s.batchErr = err
		}
		return
	}
	s.tickets = append(s.tickets, s.j.Enqueue(rec))
}

// begin/finish bracket one mutation: apply under the lock, then wait for
// durability after releasing it so concurrent mutations group-commit.
func (s *Store) begin() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.j.Err(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: store failed: %w", err)
	}
	s.tickets = s.tickets[:0]
	return nil
}

// beginCtx is begin under a tracing context: the returned "apply" span
// covers lock wait plus in-memory application and must be handed to
// finishCtx. With no span in ctx (or tracing disabled) it is free.
func (s *Store) beginCtx(ctx context.Context) (obs.Span, error) {
	apply := obs.SpanFromContext(ctx).StartChild("apply")
	if err := s.begin(); err != nil {
		apply.End()
		return obs.Span{}, err
	}
	return apply, nil
}

// finish is called with s.mu held; it releases the lock, waits for the
// journal tickets and triggers an automatic checkpoint when due.
func (s *Store) finish() error {
	_, err := s.finishCtx(context.Background(), obs.Span{})
	return err
}

// finishCtx is finish with phase spans: apply (from beginCtx) ends at
// unlock, and the ticket waits run under a sibling "fsync_wait" span.
// Returns the time spent waiting on durability.
func (s *Store) finishCtx(ctx context.Context, apply obs.Span) (waitNs int64, err error) {
	tickets := s.tickets
	s.tickets = nil
	checkpoint := false
	if n := len(tickets); n > 0 {
		s.version.Add(1)
		s.stats.Records += uint64(n)
		s.recordsSince += n
		if every := s.opts.snapshotEvery(); every > 0 && s.recordsSince >= every {
			s.recordsSince = 0
			checkpoint = true
		}
	}
	s.mu.Unlock()
	apply.End()
	if len(tickets) > 0 {
		wait := obs.SpanFromContext(ctx).StartChild("fsync_wait")
		wait.SetInt("records", int64(len(tickets)))
		start := time.Now()
		for _, t := range tickets {
			if werr := t.Wait(); werr != nil {
				wait.End()
				return time.Since(start).Nanoseconds(), fmt.Errorf("server: journal append: %w", werr)
			}
		}
		waitNs = time.Since(start).Nanoseconds()
		wait.End()
	}
	if checkpoint {
		if _, err := s.Checkpoint(); err != nil {
			return waitNs, err
		}
	}
	return waitNs, nil
}

// Add admits a service (estimate equal to the true descriptor).
func (s *Store) Add(svc vmalloc.Service) (id, node int, err error) {
	return s.AddWithEstimate(svc, svc)
}

// AddWithEstimate admits a service whose scheduler-visible estimate differs
// from its true needs. The admission decision is durable on return. It is a
// batch of one: the single-service path and POST /v1/services:batch share
// one admission and commit code path (AddBatch).
func (s *Store) AddWithEstimate(trueSvc, estSvc vmalloc.Service) (id, node int, err error) {
	out, err := s.AddBatch([]AddSpec{{True: trueSvc, Est: estSvc}})
	if err != nil {
		return 0, -1, err
	}
	if out[0].Err != nil {
		return 0, -1, out[0].Err
	}
	return out[0].ID, out[0].Node, nil
}

// AddBatch admits specs in order as one bulk operation: every admission
// routes through the same code path as a single Add (each one sees the
// capacity left by the previous), but the journal records of the whole batch
// commit as one group sharing a single fsync, and the call returns when the
// group is durable. The outcome is per-entry — an invalid or rejected entry
// never aborts the rest of the batch; the error return is reserved for
// whole-batch failures (closed store, journal failure).
func (s *Store) AddBatch(specs []AddSpec) ([]AddOutcome, error) {
	return s.AddBatchCtx(context.Background(), specs)
}

// AddBatchCtx is AddBatch under a tracing context: application runs under
// an "apply" span and the group-commit wait under "fsync_wait".
func (s *Store) AddBatchCtx(ctx context.Context, specs []AddSpec) ([]AddOutcome, error) {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return nil, err
	}
	if s.batch == nil {
		s.batch = s.j.NewBatch()
	} else {
		s.batch.Reset()
	}
	s.batching = true
	s.batchErr = nil
	entries := make([]vmalloc.BatchEntry, len(specs))
	for i := range specs {
		entries[i] = vmalloc.BatchEntry{True: specs[i].True, Est: specs[i].Est}
	}
	results := s.cluster.AddBatch(entries)
	s.batching = false
	out, admitted := convertBatchResults(results, &s.stats)
	if admitted > 0 {
		s.stats.Batches++
	}
	batchErr := s.batchErr
	n := s.batch.Len()
	ticket := s.batch.Commit()
	checkpoint := false
	if n > 0 {
		s.version.Add(1)
		s.stats.Records += uint64(n)
		s.recordsSince += n
		if every := s.opts.snapshotEvery(); every > 0 && s.recordsSince >= every {
			s.recordsSince = 0
			checkpoint = true
		}
	}
	s.mu.Unlock()
	apply.SetInt("records", int64(n))
	apply.End()
	wait := obs.SpanFromContext(ctx).StartChild("fsync_wait")
	werr := ticket.Wait()
	wait.End()
	if werr != nil {
		return out, fmt.Errorf("server: journal append: %w", werr)
	}
	if batchErr != nil {
		return out, fmt.Errorf("server: journal append: %w", batchErr)
	}
	if checkpoint {
		if _, err := s.Checkpoint(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// convertBatchResults maps cluster batch results to the store's per-entry
// outcomes (typed errors) and bumps the admission counters. Called with the
// store lock held.
func convertBatchResults(results []vmalloc.BatchResult, stats *Stats) (out []AddOutcome, admitted int) {
	out = make([]AddOutcome, len(results))
	for i, r := range results {
		switch {
		case r.Err != nil:
			out[i] = AddOutcome{Node: -1, Err: invalid(r.Err)}
		case !r.Admitted:
			out[i] = AddOutcome{Node: -1, Err: ErrRejected}
			stats.Rejected++
		default:
			out[i] = AddOutcome{ID: r.ID, Node: r.Node}
			stats.Adds++
			admitted++
		}
	}
	return out, admitted
}

// Remove departs a service; reports whether the id was live.
func (s *Store) Remove(id int) (bool, error) {
	return s.RemoveCtx(context.Background(), id)
}

// RemoveCtx is Remove under a tracing context.
func (s *Store) RemoveCtx(ctx context.Context, id int) (bool, error) {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return false, err
	}
	ok := s.cluster.Remove(id)
	if ok {
		s.stats.Removes++
	}
	if _, err := s.finishCtx(ctx, apply); err != nil {
		return ok, err
	}
	return ok, nil
}

// UpdateNeeds replaces a live service's fluid needs.
func (s *Store) UpdateNeeds(id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	return s.UpdateNeedsCtx(context.Background(), id, trueElem, trueAgg, estElem, estAgg)
}

// UpdateNeedsCtx is UpdateNeeds under a tracing context.
func (s *Store) UpdateNeedsCtx(ctx context.Context, id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return err
	}
	err = s.cluster.UpdateNeeds(id, trueElem, trueAgg, estElem, estAgg)
	if err != nil && !errors.Is(err, vmalloc.ErrUnknownService) {
		err = invalid(err)
	}
	if err == nil {
		s.stats.NeedUpdates++
	}
	if _, ferr := s.finishCtx(ctx, apply); err == nil {
		err = ferr
	}
	return err
}

// SetThreshold changes the mitigation threshold.
func (s *Store) SetThreshold(th float64) error {
	return s.SetThresholdCtx(context.Background(), th)
}

// SetThresholdCtx is SetThreshold under a tracing context.
func (s *Store) SetThresholdCtx(ctx context.Context, th float64) error {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return err
	}
	err = s.cluster.SetThreshold(th)
	if err != nil {
		err = invalid(err)
	} else {
		s.stats.Threshold = th
	}
	if _, ferr := s.finishCtx(ctx, apply); err == nil {
		err = ferr
	}
	return err
}

// Reallocate runs one full reallocation epoch; the applied placement is
// durable when the call returns.
func (s *Store) Reallocate() (*vmalloc.ClusterEpoch, error) {
	return s.ReallocateCtx(context.Background())
}

// ReallocateCtx is Reallocate under a tracing context: the solve runs under
// an "epoch" span and the epoch's phase timing plus solver counters are
// retained in the observer's epoch ring.
func (s *Store) ReallocateCtx(ctx context.Context) (*vmalloc.ClusterEpoch, error) {
	return s.epochCtx(ctx, false, 0, func(ctx context.Context, c *vmalloc.Cluster) *vmalloc.ClusterEpoch {
		return c.ReallocateCtx(ctx)
	})
}

// Repair runs one migration-bounded repair epoch.
func (s *Store) Repair(budget int) (*vmalloc.ClusterEpoch, error) {
	return s.RepairCtx(context.Background(), budget)
}

// RepairCtx is Repair under a tracing context.
func (s *Store) RepairCtx(ctx context.Context, budget int) (*vmalloc.ClusterEpoch, error) {
	return s.epochCtx(ctx, true, budget, func(ctx context.Context, c *vmalloc.Cluster) *vmalloc.ClusterEpoch {
		return c.RepairCtx(ctx, budget)
	})
}

func (s *Store) epochCtx(ctx context.Context, repair bool, budget int, run func(context.Context, *vmalloc.Cluster) *vmalloc.ClusterEpoch) (*vmalloc.ClusterEpoch, error) {
	start := time.Now()
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return nil, err
	}
	ce := run(ctx, s.cluster)
	s.stats.Epochs++
	if ce.Result.Solved {
		s.stats.Migrations += uint64(ce.Migrations)
		s.stats.LastMinYield = ce.Result.MinYield
	} else {
		s.stats.FailedEpochs++
	}
	waitNs, ferr := s.finishCtx(ctx, apply)
	recordEpoch(s.opts.Obs, ctx, start, repair, budget, ce, waitNs)
	if ferr != nil {
		return ce, ferr
	}
	return ce, nil
}

// recordEpoch pushes one finished epoch into the observer's retained ring,
// linking it to the trace the request ran under (if any).
func recordEpoch(o *obs.Observer, ctx context.Context, start time.Time, repair bool, budget int, ce *vmalloc.ClusterEpoch, waitNs int64) {
	ring := o.EpochsOf()
	if ring == nil {
		return
	}
	rec := obs.EpochRecord{
		TraceID:     obs.SpanFromContext(ctx).Trace().ID(),
		Start:       start,
		Repair:      repair,
		Budget:      budget,
		Solved:      ce.Result.Solved,
		MinYield:    ce.Result.MinYield,
		Services:    len(ce.IDs),
		Migrations:  ce.Migrations,
		TotalNs:     time.Since(start).Nanoseconds(),
		FsyncWaitNs: waitNs,
	}
	if st := ce.Stats; st != nil {
		rec.SolveNs = st.SolveNs
		rec.Solver = st.Solver
		rec.Shards = st.Shards
	}
	ring.Add(rec)
}

// MinYield evaluates the current placement under the §6 error model. It
// needs the engine's scratch buffers, so it serializes with mutations.
func (s *Store) MinYield(policy vmalloc.SchedPolicy) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.cluster.MinYield(policy), nil
}

// State returns the current cluster state and its stable JSON encoding,
// served from the published snapshot (re-derived only after a mutation).
// The returned state and bytes are shared — callers must not modify them.
func (s *Store) State() (*vmalloc.ClusterState, []byte, error) {
	v := s.version.Load()
	// Close/Kill clear the published pointer, so the lock-free fast path
	// cannot serve cached state from a closed store.
	if p := s.published.Load(); p != nil && p.version == v {
		return p.state, p.data, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	v = s.version.Load() // stable while we hold the mutation lock
	st := s.cluster.State()
	s.mu.Unlock()
	data, err := EncodeState(st)
	if err != nil {
		return nil, nil, err
	}
	s.published.Store(&publishedState{version: v, state: st, data: data})
	return st, data, nil
}

// Checkpoint writes a snapshot of the current state to the journal and
// compacts segments behind it. Returns the sequence number the snapshot
// covers.
func (s *Store) Checkpoint() (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	st := s.cluster.State()
	at := s.j.ChainHead() // seq + chain, consistent with st under s.mu
	seq := at.Seq
	s.mu.Unlock()
	data, err := EncodeState(st)
	if err != nil {
		return 0, err
	}
	if err := s.j.WriteSnapshot(at, data); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.stats.Snapshots++
	if seq > s.stats.SnapshotSeq {
		s.stats.SnapshotSeq = seq
	}
	s.mu.Unlock()
	return seq, nil
}

// JournalIOStats returns the WAL's cumulative write-path counters (records,
// group-commit batches, fsyncs, rotations, batch-size histogram).
func (s *Store) JournalIOStats() journal.IOStats {
	return s.j.IOStats()
}

// Stats returns a point-in-time counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Services = s.cluster.Len()
	st.LastSeq = s.j.LastSeq()
	return st
}

// Kill abandons the store without the Close-time checkpoint, leaving the
// journal directory exactly as a crash would: the durable records, no fresh
// snapshot. Recovery tooling and crash tests use it to exercise the replay
// path; production code wants Close.
func (s *Store) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.published.Store(nil)
	s.version.Add(1) // invalidate any concurrently re-published read cache
	s.mu.Unlock()
	s.j.Close()
}

// Close checkpoints and shuts the journal down. Further operations fail
// with ErrClosed.
func (s *Store) Close() error {
	if _, err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
		// A failed journal cannot checkpoint; still release the files.
		s.mu.Lock()
		s.closed = true
		s.published.Store(nil)
		s.version.Add(1) // invalidate any concurrently re-published read cache
		s.mu.Unlock()
		s.j.Close()
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.published.Store(nil)
	s.version.Add(1) // invalidate any concurrently re-published read cache
	s.mu.Unlock()
	return s.j.Close()
}
