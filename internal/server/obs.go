package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"vmalloc"
	"vmalloc/internal/obs"
)

// RequestIDHeader is the request-correlation header vmallocd accepts and
// echoes: a client-supplied X-Request-Id propagates verbatim, otherwise one
// is minted. The same id names the request's trace in GET /v1/debug/traces
// and stamps the request log line, so a 5xx response can always be chased
// back to its spans.
const RequestIDHeader = "X-Request-Id"

// ctxAPI is the optional context-carrying mutation surface. Stores that
// implement it (Store, ShardedStore) annotate their commit pipeline with
// the request's trace: handlers pass the request context through so
// apply, fsync_wait and epoch spans attach to it.
type ctxAPI interface {
	AddBatchCtx(ctx context.Context, specs []AddSpec) ([]AddOutcome, error)
	RemoveCtx(ctx context.Context, id int) (bool, error)
	UpdateNeedsCtx(ctx context.Context, id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error
	SetThresholdCtx(ctx context.Context, th float64) error
	ReallocateCtx(ctx context.Context) (*vmalloc.ClusterEpoch, error)
	RepairCtx(ctx context.Context, budget int) (*vmalloc.ClusterEpoch, error)
}

// ctxCalls dispatches mutations to the store's context-carrying variants
// when it has them and falls back to the plain API otherwise, so handlers
// stay oblivious to which store they serve.
type ctxCalls struct {
	s API
	c ctxAPI // nil when s has no context surface
}

func newCtxCalls(s API) ctxCalls {
	c, _ := s.(ctxAPI)
	return ctxCalls{s: s, c: c}
}

func (a ctxCalls) AddWithEstimate(ctx context.Context, trueSvc, estSvc vmalloc.Service) (id, node int, err error) {
	if a.c == nil {
		return a.s.AddWithEstimate(trueSvc, estSvc)
	}
	out, err := a.c.AddBatchCtx(ctx, []AddSpec{{True: trueSvc, Est: estSvc}})
	if err != nil {
		return 0, -1, err
	}
	if out[0].Err != nil {
		return 0, -1, out[0].Err
	}
	return out[0].ID, out[0].Node, nil
}

func (a ctxCalls) AddBatch(ctx context.Context, specs []AddSpec) ([]AddOutcome, error) {
	if a.c == nil {
		return a.s.AddBatch(specs)
	}
	return a.c.AddBatchCtx(ctx, specs)
}

func (a ctxCalls) Remove(ctx context.Context, id int) (bool, error) {
	if a.c == nil {
		return a.s.Remove(id)
	}
	return a.c.RemoveCtx(ctx, id)
}

func (a ctxCalls) UpdateNeeds(ctx context.Context, id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	if a.c == nil {
		return a.s.UpdateNeeds(id, trueElem, trueAgg, estElem, estAgg)
	}
	return a.c.UpdateNeedsCtx(ctx, id, trueElem, trueAgg, estElem, estAgg)
}

func (a ctxCalls) SetThreshold(ctx context.Context, th float64) error {
	if a.c == nil {
		return a.s.SetThreshold(th)
	}
	return a.c.SetThresholdCtx(ctx, th)
}

func (a ctxCalls) Reallocate(ctx context.Context) (*vmalloc.ClusterEpoch, error) {
	if a.c == nil {
		return a.s.Reallocate()
	}
	return a.c.ReallocateCtx(ctx)
}

func (a ctxCalls) Repair(ctx context.Context, budget int) (*vmalloc.ClusterEpoch, error) {
	if a.c == nil {
		return a.s.Repair(budget)
	}
	return a.c.RepairCtx(ctx, budget)
}

// instrumented reports whether a route takes part in per-endpoint latency
// instrumentation and request tracing. The scrape and debug surfaces are
// excluded: a 15-second Prometheus scrape interval would dominate the
// latency histograms and a poll of /v1/debug/traces would evict the very
// traces it came to read.
func instrumented(pattern string) bool {
	return pattern != "/metrics" && !strings.HasPrefix(pattern, "/v1/debug/")
}

// observe wraps h with request correlation and tracing: the X-Request-Id
// header is accepted (or minted), set on the response before the handler
// runs — so error envelopes can echo it — and names the request's trace.
// When lg is non-nil every request logs one line, at Debug normally and
// Warn from status 500. With a nil tracer and logger the handler is
// returned untouched.
func observe(method, pattern string, t *obs.Tracer, lg *slog.Logger, h http.HandlerFunc) http.HandlerFunc {
	if t == nil && lg == nil {
		return h
	}
	name := method + " " + pattern
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = t.NewID()
		}
		if id != "" {
			w.Header().Set(RequestIDHeader, id)
		}
		tr := t.StartTrace(name, id)
		if tr != nil {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), tr.Root()))
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		tr.Finish(code)
		if lg != nil {
			lvl := slog.LevelDebug
			if code >= http.StatusInternalServerError {
				lvl = slog.LevelWarn
			}
			lg.LogAttrs(r.Context(), lvl, "request",
				slog.String("method", method),
				slog.String("route", pattern),
				slog.Int("status", code),
				slog.Int64("duration_us", time.Since(start).Microseconds()),
				slog.String("request_id", id),
			)
		}
	}
}

// debugEpochsResponse is the GET /v1/debug/epochs payload: cumulative
// totals over every epoch ever run plus the retained ring, newest first.
type debugEpochsResponse struct {
	Totals obs.EpochTotals   `json:"totals"`
	Epochs []obs.EpochRecord `json:"epochs"`
}

// debugRoutes serves the retained-telemetry surface: recent/slow traces by
// id or newest-first, and the epoch ring with solver counters and phase
// timing. Read-only, lock-cheap, safe to poll in production.
func debugRoutes(o *obs.Observer) []route {
	return []route{
		{"GET", "/v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			if id := r.URL.Query().Get("id"); id != "" {
				ts, ok := o.TracerOf().Lookup(id)
				if !ok {
					httpError(w, http.StatusNotFound, fmt.Errorf("no retained trace %q", id))
					return
				}
				writeJSON(w, http.StatusOK, []obs.TraceSnapshot{ts})
				return
			}
			limit, ok := queryInt(w, r, "limit", 32)
			if !ok {
				return
			}
			snaps := o.TracerOf().Snapshot(limit)
			if snaps == nil {
				snaps = []obs.TraceSnapshot{}
			}
			writeJSON(w, http.StatusOK, snaps)
		}},
		{"GET", "/v1/debug/epochs", func(w http.ResponseWriter, r *http.Request) {
			limit, ok := queryInt(w, r, "limit", 32)
			if !ok {
				return
			}
			ring := o.EpochsOf()
			resp := debugEpochsResponse{Totals: ring.Totals(), Epochs: ring.Snapshot(limit)}
			if resp.Epochs == nil {
				resp.Epochs = []obs.EpochRecord{}
			}
			writeJSON(w, http.StatusOK, resp)
		}},
	}
}
