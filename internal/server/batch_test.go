package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"vmalloc"
	"vmalloc/internal/journal"
)

func batchOf(svcs ...vmalloc.Service) batchRequest {
	var req batchRequest
	for i := range svcs {
		req.Services = append(req.Services, addRequest{True: &svcs[i]})
	}
	return req
}

// TestHTTPBatchAdmission drives the bulk endpoint end to end on a sharded
// store: every entry admitted, ids unique, and the batch lands on every
// placement domain.
func TestHTTPBatchAdmission(t *testing.T) {
	s := openSharded(t, t.TempDir(), testNodes(8, 51), 4)
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })

	const n = 64
	svcs := make([]vmalloc.Service, n)
	for i := range svcs {
		svcs[i] = smallService(0.001 + float64(i)*1e-5)
	}
	var resp batchResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/services:batch", batchOf(svcs...), &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if resp.Admitted != n || resp.Rejected != 0 || resp.Invalid != 0 {
		t.Fatalf("summary = %+v", resp)
	}
	seen := map[int]bool{}
	for i, r := range resp.Results {
		if r.ID == nil || r.Node == nil || r.Error != "" {
			t.Fatalf("entry %d not admitted: %+v", i, r)
		}
		if seen[*r.ID] {
			t.Fatalf("duplicate id %d", *r.ID)
		}
		seen[*r.ID] = true
	}
	if st := s.Stats(); st.Services != n || st.Adds != n || st.Batches != 1 {
		t.Fatalf("stats after batch: %+v", st)
	}
	stats, err := s.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stats {
		if st.Services == 0 {
			t.Fatalf("shard %d got no services; batch did not span the shards: %+v", st.Shard, stats)
		}
	}
}

// TestHTTPBatchEmpty: an empty or missing services list is a 400, not a
// zero-record commit.
func TestHTTPBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{`{"services":[]}`, `{}`} {
		resp, err := http.Post(ts.URL+"/v1/services:batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHTTPBatchPartial pins partial success: valid entries commit, invalid
// and rejected entries report per-entry errors with the status the same
// request would have drawn on the single endpoint.
func TestHTTPBatchPartial(t *testing.T) {
	s, ts := newTestServer(t)

	wrongDim := vmalloc.Service{
		ReqElem: vmalloc.Of(0.1, 0.1, 0.1), ReqAgg: vmalloc.Of(0.1, 0.1, 0.1),
		NeedElem: vmalloc.Of(0, 0, 0), NeedAgg: vmalloc.Of(0, 0, 0),
	}
	req := batchOf(smallService(0.01), wrongDim, smallService(5000), smallService(0.02))
	req.Services = append(req.Services, addRequest{Est: ptr(smallService(0.01))}) // missing "true"

	var resp batchResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/services:batch", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("partial batch: %d %s", code, raw)
	}
	if resp.Admitted != 2 || resp.Rejected != 1 || resp.Invalid != 2 {
		t.Fatalf("summary = %+v (%s)", resp, raw)
	}
	wantStatus := []int{0, http.StatusBadRequest, http.StatusConflict, 0, http.StatusBadRequest}
	for i, want := range wantStatus {
		got := resp.Results[i]
		if want == 0 {
			if got.ID == nil || got.Error != "" {
				t.Fatalf("entry %d should be admitted: %+v", i, got)
			}
			continue
		}
		if got.Status != want || got.Error == "" || got.ID != nil {
			t.Fatalf("entry %d = %+v, want status %d", i, got, want)
		}
	}
	if st := s.Stats(); st.Services != 2 || st.Rejected != 1 {
		t.Fatalf("stats after partial batch: %+v", st)
	}
}

// TestBatchSingleEquivalence is the one-admission-code-path guarantee: a
// store fed one bulk call and a store fed the same services one by one must
// end bit-identical — same ids, same nodes, same durable state.
func TestBatchSingleEquivalence(t *testing.T) {
	const n = 48
	specs := make([]AddSpec, n)
	for i := range specs {
		svc := smallService(0.002 + float64(i)*1e-5)
		specs[i] = AddSpec{True: svc, Est: svc}
	}
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			open := func(dir string) API {
				opts := &Options{Fsync: journal.FsyncNone, Shards: shards}
				if shards > 0 {
					s, err := OpenSharded(dir, testNodes(9, 53), opts)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { s.Close() })
					return s
				}
				s, err := Open(dir, testNodes(9, 53), opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			}
			one := open(t.TempDir())
			two := open(t.TempDir())

			outs, err := one.AddBatch(specs)
			if err != nil {
				t.Fatal(err)
			}
			for i, spec := range specs {
				id, node, err := two.AddWithEstimate(spec.True, spec.Est)
				o := outs[i]
				if (err == nil) != (o.Err == nil) || id != o.ID || (err == nil && node != o.Node) {
					t.Fatalf("entry %d: batch (%d,%d,%v) vs single (%d,%d,%v)",
						i, o.ID, o.Node, o.Err, id, node, err)
				}
			}
			_, a, err := one.State()
			if err != nil {
				t.Fatal(err)
			}
			_, b, err := two.State()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("batched and sequential states diverge:\nbatch:  %s\nsingle: %s", a, b)
			}
		})
	}
}

// TestShardedBatchKillRecovery is the crash acceptance test for bulk
// admission: after an acked batch, a kill -9 and reopen must recover every
// admitted service — the group append is all-in-the-log, not best-effort.
func TestShardedBatchKillRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir, testNodes(8, 57), 2)

	specs := make([]AddSpec, 80)
	for i := range specs {
		svc := smallService(0.001 + float64(i)*1e-5)
		specs[i] = AddSpec{True: svc, Est: svc}
	}
	outs, err := s.AddBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, o := range outs {
		if o.Err == nil {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no admissions acked; test is vacuous")
	}
	want := append([]byte(nil), shardedStateJSON(t, s)...)
	s.Kill()

	r := openSharded(t, dir, nil, 0)
	defer r.Close()
	if got := shardedStateJSON(t, r); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from acked pre-kill state:\npre:  %s\npost: %s", want, got)
	}
	if st := r.Stats(); st.Services != acked {
		t.Fatalf("recovered %d services, want %d acked", st.Services, acked)
	}
	if r.Stats().Replayed == 0 {
		t.Fatal("kill -9 recovery replayed nothing; the batch was not in the WAL")
	}
}

// TestMetricsEndpoint wires the instrumented handler over a sharded store and
// checks the exposition covers the acceptance surface: per-endpoint request
// counters and latency, per-shard gauges, journal I/O counters.
func TestMetricsEndpoint(t *testing.T) {
	s := openSharded(t, t.TempDir(), testNodes(8, 59), 2)
	ts := httptest.NewServer(NewHandler(s, NewMetrics(s)))
	t.Cleanup(func() { ts.Close(); s.Close() })

	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services",
		addRequest{True: ptr(smallService(0.01))}, nil); code != http.StatusCreated {
		t.Fatalf("add: %d %s", code, raw)
	}
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services:batch",
		batchOf(smallService(0.01), smallService(0.01)), nil); code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}

	code, body := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`vmallocd_http_requests_total{method="POST",path="/v1/services",code="201"} 1`,
		`vmallocd_http_requests_total{method="POST",path="/v1/services:batch",code="200"} 1`,
		`vmallocd_http_request_seconds_count{method="POST",path="/v1/services:batch"} 1`,
		"vmallocd_services 3",
		`vmallocd_admissions_total{result="admitted"} 3`,
		"vmallocd_admission_batches_total 2",
		"vmallocd_journal_records_total 3",
		"vmallocd_journal_fsyncs_total",
		"vmallocd_journal_commit_records_sum 3",
		`vmallocd_shard_headroom{shard="0"}`,
		`vmallocd_shard_headroom{shard="1"}`,
		`vmallocd_shard_services{shard=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestRoutesDocumented diffs the route table against docs/api.md: every
// endpoint vmallocd can serve must appear in the API reference verbatim as
// "METHOD /path".
func TestRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/api.md")
	if err != nil {
		t.Fatalf("reading docs/api.md: %v", err)
	}
	routes := Routes()
	if len(routes) < 13 {
		t.Fatalf("route table suspiciously small: %q", routes)
	}
	for _, r := range routes {
		if !bytes.Contains(doc, []byte(r)) {
			t.Errorf("docs/api.md does not document %q", r)
		}
	}
}
