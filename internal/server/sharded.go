package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/obs"
)

// ShardManifest pins the immutable facts of a sharded journal directory:
// the shard count, the admission seed and the full node park. It is written
// once, on first boot, before any shard directory exists, so recovery never
// has to guess the partition — even when a crash interrupted the very first
// bootstrap and some shard directories are missing.
type ShardManifest struct {
	Shards int            `json:"shards"`
	Seed   int64          `json:"seed"`
	Nodes  []vmalloc.Node `json:"nodes"`
}

const manifestName = "shards.json"

// LoadShardManifest reads the manifest of a sharded journal directory, or
// (nil, nil) when dir holds none (it is not sharded, or not yet born).
func LoadShardManifest(dir string) (*ShardManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: reading shard manifest: %w", err)
	}
	var m ShardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: decoding shard manifest: %w", err)
	}
	if m.Shards < 1 || m.Shards > len(m.Nodes) {
		return nil, fmt.Errorf("server: shard manifest has %d shards over %d nodes", m.Shards, len(m.Nodes))
	}
	return &m, nil
}

func writeShardManifest(dir string, m *ShardManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return journal.SyncDir(dir)
}

// SaveShardManifest durably writes the shard manifest of dir, creating the
// directory if needed. A replication follower mirrors the leader's manifest
// with it before installing per-shard checkpoints.
func SaveShardManifest(dir string, m *ShardManifest) error {
	if m == nil || m.Shards < 1 || m.Shards > len(m.Nodes) {
		return errors.New("server: invalid shard manifest")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := writeShardManifest(dir, m); err != nil {
		return fmt.Errorf("server: writing shard manifest: %w", err)
	}
	return nil
}

func shardDir(dir string, s int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d", s)) }

// ShardDir returns the journal directory of shard s under dir.
func ShardDir(dir string, s int) string { return shardDir(dir, s) }

// DirRecovered reports whether dir already holds a journaled cluster —
// sharded (manifest present) or unsharded (journal files present) — i.e.
// whether booting from it recovers an existing platform instead of
// bootstrapping the one named on the command line.
func DirRecovered(dir string) (recovered bool, manifest *ShardManifest, err error) {
	m, err := LoadShardManifest(dir)
	if err != nil {
		return false, nil, err
	}
	if m != nil {
		return true, m, nil
	}
	return journal.DirHasJournal(dir), nil, nil
}

// DescribeDir summarizes the recovered platform of a journal directory for
// operator-facing messages ("which platform would win"), without keeping
// the directory open.
func DescribeDir(dir string) string {
	if m, err := LoadShardManifest(dir); err == nil && m != nil {
		return fmt.Sprintf("%d shards over %d nodes", m.Shards, len(m.Nodes))
	}
	rc, err := journal.Recover(journal.Options{Dir: dir})
	if err != nil {
		return "an existing journal"
	}
	defer rc.Close()
	if snap := rc.Info().Snapshot; snap != nil {
		if st, err := DecodeState(snap); err == nil {
			return fmt.Sprintf("%d nodes, %d live services at the last snapshot",
				len(st.Nodes), len(st.Services))
		}
	}
	return "an existing journal"
}

// ShardedStore is the sharded durable tier: a vmalloc.ShardedCluster whose
// K placement domains each journal to their own WAL directory
// (dir/shard-0 … dir/shard-K-1), behind one commit pipeline. Mutations
// apply under a single lock (preserving the router's deterministic
// trajectory) and the fsync waits happen after unlock, so concurrent
// requests group-commit per shard; an epoch's records fan out to every
// shard's journal and the call returns only when all of them are durable.
//
// Cross-WAL atomicity for rebalance moves follows a fixed discipline: the
// destination's MOVE_IN record is fsynced before the source's MOVE_OUT is
// even enqueued, and checkpoints barrier every journal before writing any
// snapshot. A crash can therefore leave a moving service recovered in two
// shards — never in zero — and recovery resolves the duplicate by move
// generation (see vmalloc.ShardedRestore.Finish). Safe for concurrent use.
type ShardedStore struct {
	opts     Options
	dir      string
	manifest *ShardManifest // immutable after OpenSharded

	mu           sync.Mutex
	cluster      *vmalloc.ShardedCluster
	js           []*journal.Journal
	tickets      []*journal.Ticket
	batches      []*journal.Batch        // per-shard bulk-admission record groups (AddBatch)
	batching     bool                    // route hook events into batches instead of Enqueue
	moveIn       map[int]*journal.Ticket // pending MOVE_IN tickets by service id
	hookErr      error                   // first enqueue-ordering failure, surfaced at finish
	enqueued     int                     // records enqueued by the current mutation
	recordsSince int
	closed       bool
	stats        Stats

	// RecoveryWarnings describes cross-WAL repairs performed at boot
	// (dropped duplicate copies of moved services, threshold
	// realignment). Empty after a clean shutdown.
	RecoveryWarnings []string

	version   atomic.Uint64
	published atomic.Pointer[publishedState]
}

// OpenSharded recovers (or bootstraps) a sharded journaled cluster in dir.
// On first boot nodes defines the park and opts.Shards the partition, and a
// manifest plus per-shard bootstrap snapshots are written; on every later
// boot the manifest defines both and nodes is ignored (opts.Shards, when
// non-zero, must agree with the manifest). opts.InitialState is not
// supported for sharded stores.
func OpenSharded(dir string, nodes []vmalloc.Node, opts *Options) (*ShardedStore, error) {
	if opts == nil {
		opts = &Options{}
	}
	if opts.InitialState != nil {
		return nil, errors.New("server: sharded stores cannot bootstrap from -state-in; boot unsharded or admit through the API")
	}
	s := &ShardedStore{opts: *opts, dir: dir, moveIn: make(map[int]*journal.Ticket)}

	m, err := LoadShardManifest(dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		k := opts.Shards
		if k == 0 {
			k = 1
		}
		if len(nodes) == 0 {
			return nil, errors.New("server: fresh sharded directory needs nodes")
		}
		if k < 1 || k > len(nodes) {
			return nil, fmt.Errorf("server: %d shards over %d nodes (want 1 <= shards <= nodes)", k, len(nodes))
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		m = &ShardManifest{Shards: k, Seed: opts.ShardSeed, Nodes: nodes}
		if err := writeShardManifest(dir, m); err != nil {
			return nil, fmt.Errorf("server: writing shard manifest: %w", err)
		}
	} else if opts.Shards != 0 && opts.Shards != m.Shards {
		return nil, fmt.Errorf("server: -shards %d conflicts with recovered manifest (%d shards)", opts.Shards, m.Shards)
	}
	s.manifest = m

	rep, err := OpenShardedReplay(dir, opts)
	if err != nil {
		return nil, err
	}
	cluster, warnings, err := rep.Restore.Finish()
	if err != nil {
		rep.Close()
		return nil, err
	}
	s.cluster = cluster
	s.RecoveryWarnings = warnings
	s.js = rep.Journals
	s.stats.Replayed = rep.Replayed
	s.stats.TruncatedBytes = rep.TruncatedBytes
	s.stats.SnapshotSeq = rep.SnapshotSeq
	s.stats.Threshold = cluster.State().Threshold
	cluster.SetHook(s.onEvent)

	if rep.Fresh || (opts.snapshotEvery() > 0 && rep.Replayed >= opts.snapshotEvery()) {
		if _, err := s.Checkpoint(); err != nil {
			s.closeJournals()
			return nil, err
		}
	}
	return s, nil
}

// ShardedReplay is a recovered-but-unreconciled sharded directory: every
// shard journal is open for appending, every shard engine is restored from
// its snapshot with the WAL tail replayed, and the ShardedRestore is still
// open — reconciliation (Finish) has NOT run. It is the serving state of a
// replication follower: the leader's streamed records keep applying through
// Restore, and promotion finishes (or re-opens) the directory into a
// writable ShardedStore.
type ShardedReplay struct {
	Manifest *ShardManifest
	Restore  *vmalloc.ShardedRestore
	Journals []*journal.Journal
	// Boot-time recovery facts, summed over shards.
	Replayed       int
	TruncatedBytes int
	SnapshotSeq    uint64
	// Fresh reports that at least one shard had no snapshot (first boot).
	Fresh bool
}

// Close releases the shard journals (and with them the directory locks).
func (rp *ShardedReplay) Close() error {
	var first error
	for _, j := range rp.Journals {
		if j != nil {
			if err := j.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// OpenShardedReplay recovers a sharded journal directory up to — but not
// including — cross-shard reconciliation. The directory must already hold a
// shard manifest (OpenSharded writes one on first boot; a follower copies
// the leader's). OpenSharded composes this with Finish; a replication
// follower keeps the replay seam open and applies streamed records instead.
func OpenShardedReplay(dir string, opts *Options) (*ShardedReplay, error) {
	if opts == nil {
		opts = &Options{}
	}
	m, err := LoadShardManifest(dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("server: %s has no shard manifest", dir)
	}
	if opts.Shards != 0 && opts.Shards != m.Shards {
		return nil, fmt.Errorf("server: -shards %d conflicts with recovered manifest (%d shards)", opts.Shards, m.Shards)
	}
	rp := &ShardedReplay{Manifest: m}

	// Phase 1: per-shard journal recovery — newest snapshot per shard.
	recs := make([]*journal.Recovery, m.Shards)
	states := make([]*vmalloc.ClusterState, m.Shards)
	defer func() {
		for _, rc := range recs {
			if rc != nil {
				rc.Close()
			}
		}
	}()
	for i := 0; i < m.Shards; i++ {
		rc, err := journal.Recover(journal.Options{
			Dir:              shardDir(dir, i),
			SegmentBytes:     opts.SegmentBytes,
			Fsync:            opts.Fsync,
			KeepSnapshots:    opts.KeepSnapshots,
			ChainInterval:    opts.ChainInterval,
			FS:               opts.FS,
			ValidateSnapshot: func(b []byte) error { _, err := DecodeState(b); return err },
		})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		recs[i] = rc
		if snap := rc.Info().Snapshot; snap != nil {
			st, err := DecodeState(snap)
			if err != nil {
				return nil, fmt.Errorf("server: shard %d: %w", i, err) // validated during Recover
			}
			states[i] = st
		} else {
			rp.Fresh = true
		}
	}

	// Phase 2: restore engines from snapshots, replay each shard's tail.
	sopts := &vmalloc.ShardedOptions{
		ClusterOptions: opts.Cluster,
		Shards:         m.Shards,
		Seed:           m.Seed,
		RebalanceGap:   opts.RebalanceGap,
		RebalanceMoves: opts.RebalanceMoves,
	}
	restore, err := vmalloc.RestoreShardedCluster(m.Nodes, states, sopts)
	if err != nil {
		return nil, err
	}
	rp.Restore = restore
	for i, rc := range recs {
		shardIdx := i
		if err := rc.Replay(func(r *journal.Record) error {
			return ApplyShardRecord(restore, shardIdx, r)
		}); err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		info := rc.Info()
		rp.Replayed += info.Replayed
		rp.TruncatedBytes += info.TruncatedBytes
		if info.SnapshotSeq > rp.SnapshotSeq {
			rp.SnapshotSeq = info.SnapshotSeq
		}
	}

	// Phase 3: open the journals for appending.
	rp.Journals = make([]*journal.Journal, m.Shards)
	for i, rc := range recs {
		j, err := rc.Journal()
		if err != nil {
			rp.Close()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		rp.Journals[i] = j
	}
	return rp, nil
}

// ApplyShardRecord replays one journaled decision of shard i against an open
// ShardedRestore. Boot-time recovery and a replication follower's streamed
// apply path share it, so a follower interprets records exactly the way a
// crash-recovering leader would.
func ApplyShardRecord(rc *vmalloc.ShardedRestore, i int, r *journal.Record) error {
	switch r.Op {
	case journal.OpAdd:
		return rc.ShardAdd(i, r.ID, r.Node, r.TrueSvc, r.EstSvc)
	case journal.OpMoveIn:
		return rc.ShardMoveIn(i, r.ID, r.Node, r.Gen, r.TrueSvc, r.EstSvc)
	case journal.OpRemove:
		return rc.ShardRemove(i, r.ID)
	case journal.OpMoveOut:
		return rc.ShardMoveOut(i, r.ID, r.Gen)
	case journal.OpUpdateNeeds:
		return rc.ShardUpdateNeeds(i, r.ID, r.Needs)
	case journal.OpSetThreshold:
		return rc.ShardSetThreshold(i, r.Threshold)
	case journal.OpEpoch:
		return rc.ShardApplyPlacement(i, r.IDs, r.Placement)
	}
	return fmt.Errorf("server: replay: unknown op %d (seq %d)", uint8(r.Op), r.Seq)
}

// onEvent journals one applied shard mutation. It runs while the mutation
// holds s.mu, so per-journal enqueue order equals application order. For a
// rebalance move the MOVE_OUT waits for its MOVE_IN to be durable before
// being enqueued — the invariant recovery's duplicate resolution rests on.
func (s *ShardedStore) onEvent(ev *vmalloc.ShardEvent) {
	rec := &journal.Record{}
	switch ev.Op {
	case vmalloc.ClusterOpAdd:
		rec.Op, rec.ID, rec.Node = journal.OpAdd, ev.ID, ev.Node
		rec.TrueSvc, rec.EstSvc = *ev.TrueSvc, *ev.EstSvc
	case vmalloc.ClusterOpMoveIn:
		rec.Op, rec.ID, rec.Node, rec.Gen = journal.OpMoveIn, ev.ID, ev.Node, ev.Gen
		rec.TrueSvc, rec.EstSvc = *ev.TrueSvc, *ev.EstSvc
	case vmalloc.ClusterOpRemove:
		rec.Op, rec.ID = journal.OpRemove, ev.ID
	case vmalloc.ClusterOpMoveOut:
		rec.Op, rec.ID, rec.Gen = journal.OpMoveOut, ev.ID, ev.Gen
		if t := s.moveIn[ev.ID]; t != nil {
			delete(s.moveIn, ev.ID)
			if err := t.Wait(); err != nil && s.hookErr == nil {
				s.hookErr = err
			}
		}
	case vmalloc.ClusterOpUpdateNeeds:
		rec.Op, rec.ID = journal.OpUpdateNeeds, ev.ID
		rec.Needs = ev.Needs
	case vmalloc.ClusterOpSetThreshold:
		rec.Op, rec.Threshold = journal.OpSetThreshold, ev.Threshold
	case vmalloc.ClusterOpEpoch:
		rec.Op, rec.Repair, rec.Budget = journal.OpEpoch, ev.Repair, ev.Budget
		rec.IDs, rec.Placement = ev.IDs, ev.Placement
	default:
		return
	}
	// Enqueue and Batch.Add both encode synchronously, so aliasing engine
	// buffers is safe. During a bulk admission each shard's records
	// accumulate in that shard's batch and commit as one group sharing a
	// single fsync per shard.
	if s.batching {
		b := s.batches[ev.Shard]
		if b == nil {
			b = s.js[ev.Shard].NewBatch()
			s.batches[ev.Shard] = b
		}
		if err := b.Add(rec); err != nil && s.hookErr == nil {
			s.hookErr = err
		}
		return
	}
	t := s.js[ev.Shard].Enqueue(rec)
	s.enqueued++
	if rec.Op == journal.OpMoveIn {
		// Tickets are single-use: the paired MOVE_OUT (or finish, if the
		// pair never completes) waits this one, so it stays out of the
		// common list.
		s.moveIn[ev.ID] = t
		return
	}
	s.tickets = append(s.tickets, t)
}

func (s *ShardedStore) begin() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	for _, j := range s.js {
		if err := j.Err(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("server: store failed: %w", err)
		}
	}
	s.tickets = s.tickets[:0]
	s.hookErr = nil
	s.enqueued = 0
	return nil
}

// beginCtx is begin under a tracing context; see Store.beginCtx.
func (s *ShardedStore) beginCtx(ctx context.Context) (obs.Span, error) {
	apply := obs.SpanFromContext(ctx).StartChild("apply")
	if err := s.begin(); err != nil {
		apply.End()
		return obs.Span{}, err
	}
	return apply, nil
}

func (s *ShardedStore) finish() error {
	_, err := s.finishCtx(context.Background(), obs.Span{})
	return err
}

// finishCtx is finish with phase spans: apply ends at unlock, the
// cross-shard ticket waits run under a sibling "fsync_wait" span, and the
// durability wait time is returned.
func (s *ShardedStore) finishCtx(ctx context.Context, apply obs.Span) (waitNs int64, err error) {
	tickets := s.tickets
	s.tickets = nil
	hookErr := s.hookErr
	// Every MOVE_IN is normally consumed by its paired MOVE_OUT wait; any
	// leftovers still owe a durability wait.
	for id, t := range s.moveIn {
		tickets = append(tickets, t)
		delete(s.moveIn, id)
	}
	checkpoint := false
	if n := s.enqueued; n > 0 {
		s.version.Add(1)
		s.stats.Records += uint64(n)
		s.recordsSince += n
		if every := s.opts.snapshotEvery(); every > 0 && s.recordsSince >= every {
			s.recordsSince = 0
			checkpoint = true
		}
	}
	s.mu.Unlock()
	apply.End()
	if len(tickets) > 0 {
		wait := obs.SpanFromContext(ctx).StartChild("fsync_wait")
		wait.SetInt("records", int64(len(tickets)))
		start := time.Now()
		for _, t := range tickets {
			if werr := t.Wait(); werr != nil {
				wait.End()
				return time.Since(start).Nanoseconds(), fmt.Errorf("server: journal append: %w", werr)
			}
		}
		waitNs = time.Since(start).Nanoseconds()
		wait.End()
	}
	if hookErr != nil {
		return waitNs, fmt.Errorf("server: journal append: %w", hookErr)
	}
	if checkpoint {
		if _, err := s.Checkpoint(); err != nil {
			return waitNs, err
		}
	}
	return waitNs, nil
}

// Add admits a service (estimate equal to the true descriptor).
func (s *ShardedStore) Add(svc vmalloc.Service) (id, node int, err error) {
	return s.AddWithEstimate(svc, svc)
}

// AddWithEstimate admits a service through the deterministic two-choice
// shard router; the admission decision is durable on return. It is a batch
// of one: the single-service path and POST /v1/services:batch share one
// admission and commit code path (AddBatch).
func (s *ShardedStore) AddWithEstimate(trueSvc, estSvc vmalloc.Service) (id, node int, err error) {
	out, err := s.AddBatch([]AddSpec{{True: trueSvc, Est: estSvc}})
	if err != nil {
		return 0, -1, err
	}
	if out[0].Err != nil {
		return 0, -1, out[0].Err
	}
	return out[0].ID, out[0].Node, nil
}

// AddBatch admits specs in order through the deterministic two-choice shard
// router as one bulk operation. Admissions are grouped per placement domain:
// each shard's records commit to its WAL as one batch sharing a single
// group-commit fsync, and the call returns when every touched shard is
// durable. Outcomes are per-entry — an invalid or rejected entry never
// aborts the rest of the batch; the error return is reserved for whole-batch
// failures (closed store, journal failure).
func (s *ShardedStore) AddBatch(specs []AddSpec) ([]AddOutcome, error) {
	return s.AddBatchCtx(context.Background(), specs)
}

// AddBatchCtx is AddBatch under a tracing context: application runs under
// an "apply" span and the per-shard group-commit waits under "fsync_wait".
func (s *ShardedStore) AddBatchCtx(ctx context.Context, specs []AddSpec) ([]AddOutcome, error) {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return nil, err
	}
	if s.batches == nil {
		s.batches = make([]*journal.Batch, len(s.js))
	}
	s.batching = true
	entries := make([]vmalloc.BatchEntry, len(specs))
	for i := range specs {
		entries[i] = vmalloc.BatchEntry{True: specs[i].True, Est: specs[i].Est}
	}
	results := s.cluster.AddBatch(entries)
	s.batching = false
	out, admitted := convertBatchResults(results, &s.stats)
	if admitted > 0 {
		s.stats.Batches++
	}
	hookErr := s.hookErr
	n := 0
	tickets := make([]*journal.Ticket, 0, len(s.js))
	for _, b := range s.batches {
		if b == nil || b.Len() == 0 {
			continue
		}
		n += b.Len()
		tickets = append(tickets, b.Commit())
	}
	checkpoint := false
	if n > 0 {
		s.version.Add(1)
		s.stats.Records += uint64(n)
		s.recordsSince += n
		if every := s.opts.snapshotEvery(); every > 0 && s.recordsSince >= every {
			s.recordsSince = 0
			checkpoint = true
		}
	}
	s.mu.Unlock()
	apply.SetInt("records", int64(n))
	apply.End()
	wait := obs.SpanFromContext(ctx).StartChild("fsync_wait")
	wait.SetInt("shards", int64(len(tickets)))
	for _, t := range tickets {
		if err := t.Wait(); err != nil {
			wait.End()
			return out, fmt.Errorf("server: journal append: %w", err)
		}
	}
	wait.End()
	if hookErr != nil {
		return out, fmt.Errorf("server: journal append: %w", hookErr)
	}
	if checkpoint {
		if _, err := s.Checkpoint(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Remove departs a service; reports whether the id was live.
func (s *ShardedStore) Remove(id int) (bool, error) {
	return s.RemoveCtx(context.Background(), id)
}

// RemoveCtx is Remove under a tracing context.
func (s *ShardedStore) RemoveCtx(ctx context.Context, id int) (bool, error) {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return false, err
	}
	ok := s.cluster.Remove(id)
	if ok {
		s.stats.Removes++
	}
	if _, err := s.finishCtx(ctx, apply); err != nil {
		return ok, err
	}
	return ok, nil
}

// UpdateNeeds replaces a live service's fluid needs.
func (s *ShardedStore) UpdateNeeds(id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	return s.UpdateNeedsCtx(context.Background(), id, trueElem, trueAgg, estElem, estAgg)
}

// UpdateNeedsCtx is UpdateNeeds under a tracing context.
func (s *ShardedStore) UpdateNeedsCtx(ctx context.Context, id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return err
	}
	err = s.cluster.UpdateNeeds(id, trueElem, trueAgg, estElem, estAgg)
	if err != nil && !errors.Is(err, vmalloc.ErrUnknownService) {
		err = invalid(err)
	}
	if err == nil {
		s.stats.NeedUpdates++
	}
	if _, ferr := s.finishCtx(ctx, apply); err == nil {
		err = ferr
	}
	return err
}

// SetThreshold changes the mitigation threshold on every shard.
func (s *ShardedStore) SetThreshold(th float64) error {
	return s.SetThresholdCtx(context.Background(), th)
}

// SetThresholdCtx is SetThreshold under a tracing context.
func (s *ShardedStore) SetThresholdCtx(ctx context.Context, th float64) error {
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return err
	}
	err = s.cluster.SetThreshold(th)
	if err != nil {
		err = invalid(err)
	} else {
		s.stats.Threshold = th
	}
	if _, ferr := s.finishCtx(ctx, apply); err == nil {
		err = ferr
	}
	return err
}

// Reallocate runs one scatter-gather reallocation epoch (with cross-shard
// rebalancing); the applied placements are durable in every shard's WAL
// when the call returns.
func (s *ShardedStore) Reallocate() (*vmalloc.ClusterEpoch, error) {
	return s.ReallocateCtx(context.Background())
}

// ReallocateCtx is Reallocate under a tracing context: the scatter-gather
// solve runs under an "epoch" span with one "shard_epoch" child per
// placement domain, and the epoch's phase timing plus per-shard solver
// counters are retained in the observer's epoch ring.
func (s *ShardedStore) ReallocateCtx(ctx context.Context) (*vmalloc.ClusterEpoch, error) {
	return s.epochCtx(ctx, false, 0, func(ctx context.Context, c *vmalloc.ShardedCluster) *vmalloc.ClusterEpoch {
		return c.ReallocateCtx(ctx)
	})
}

// Repair runs one migration-bounded repair epoch per shard.
func (s *ShardedStore) Repair(budget int) (*vmalloc.ClusterEpoch, error) {
	return s.RepairCtx(context.Background(), budget)
}

// RepairCtx is Repair under a tracing context.
func (s *ShardedStore) RepairCtx(ctx context.Context, budget int) (*vmalloc.ClusterEpoch, error) {
	return s.epochCtx(ctx, true, budget, func(ctx context.Context, c *vmalloc.ShardedCluster) *vmalloc.ClusterEpoch {
		return c.RepairCtx(ctx, budget)
	})
}

func (s *ShardedStore) epochCtx(ctx context.Context, repair bool, budget int, run func(context.Context, *vmalloc.ShardedCluster) *vmalloc.ClusterEpoch) (*vmalloc.ClusterEpoch, error) {
	start := time.Now()
	apply, err := s.beginCtx(ctx)
	if err != nil {
		return nil, err
	}
	ce := run(ctx, s.cluster)
	s.stats.Epochs++
	if ce.Result.Solved {
		s.stats.Migrations += uint64(ce.Migrations)
		s.stats.LastMinYield = ce.Result.MinYield
	} else {
		s.stats.FailedEpochs++
	}
	waitNs, ferr := s.finishCtx(ctx, apply)
	recordEpoch(s.opts.Obs, ctx, start, repair, budget, ce, waitNs)
	if ferr != nil {
		return ce, ferr
	}
	return ce, nil
}

// MinYield evaluates the current placement under the §6 error model,
// minimized over non-empty shards.
func (s *ShardedStore) MinYield(policy vmalloc.SchedPolicy) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.cluster.MinYield(policy), nil
}

// ShardStats returns per-shard statistics.
func (s *ShardedStore) ShardStats() ([]vmalloc.ShardStat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.cluster.ShardStats(), nil
}

// State returns the merged park-global cluster state and its stable JSON
// encoding, served from the published snapshot. The returned state and
// bytes are shared — callers must not modify them.
func (s *ShardedStore) State() (*vmalloc.ClusterState, []byte, error) {
	v := s.version.Load()
	if p := s.published.Load(); p != nil && p.version == v {
		return p.state, p.data, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	v = s.version.Load()
	st := s.cluster.State()
	s.mu.Unlock()
	data, err := EncodeState(st)
	if err != nil {
		return nil, nil, err
	}
	s.published.Store(&publishedState{version: v, state: st, data: data})
	return st, data, nil
}

// Checkpoint snapshots every shard and compacts the WALs behind the
// snapshots. Before any snapshot is written, a barrier on every journal
// waits out all previously enqueued records — so no shard snapshot can ever
// include a rebalanced arrival whose matching departure is not yet durable
// in the source shard's WAL. Returns the highest covered sequence number.
func (s *ShardedStore) Checkpoint() (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	type shardSnap struct {
		at   journal.ChainPoint
		data []byte
	}
	snaps := make([]shardSnap, len(s.js))
	barriers := make([]*journal.Ticket, len(s.js))
	var encErr error
	for i, j := range s.js {
		barriers[i] = j.Barrier()
		st := s.cluster.ShardState(i)
		data, err := EncodeState(st)
		if err != nil {
			encErr = err
			break
		}
		snaps[i] = shardSnap{at: j.ChainHead(), data: data}
	}
	s.mu.Unlock()
	if encErr != nil {
		return 0, encErr
	}
	for _, b := range barriers {
		if err := b.Wait(); err != nil {
			return 0, fmt.Errorf("server: checkpoint barrier: %w", err)
		}
	}
	var maxSeq uint64
	for i, j := range s.js {
		if err := j.WriteSnapshot(snaps[i].at, snaps[i].data); err != nil {
			return 0, fmt.Errorf("server: shard %d snapshot: %w", i, err)
		}
		if snaps[i].at.Seq > maxSeq {
			maxSeq = snaps[i].at.Seq
		}
	}
	s.mu.Lock()
	s.stats.Snapshots++
	if maxSeq > s.stats.SnapshotSeq {
		s.stats.SnapshotSeq = maxSeq
	}
	s.mu.Unlock()
	return maxSeq, nil
}

// Stats returns a point-in-time counter snapshot (LastSeq is the sum over
// shard journals, so it is monotone across any single-shard or epoch-wide
// mutation).
func (s *ShardedStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Services = s.cluster.Len()
	for _, j := range s.js {
		st.LastSeq += j.LastSeq()
	}
	st.Shards = len(s.js)
	return st
}

// JournalIOStats returns the cumulative write-path counters summed over the
// per-shard WALs.
func (s *ShardedStore) JournalIOStats() journal.IOStats {
	var sum journal.IOStats
	for _, j := range s.js {
		st := j.IOStats()
		sum.Records += st.Records
		sum.Batches += st.Batches
		sum.Fsyncs += st.Fsyncs
		sum.Rotations += st.Rotations
		for i := range sum.BatchSizes {
			sum.BatchSizes[i] += st.BatchSizes[i]
		}
	}
	return sum
}

func (s *ShardedStore) closeJournals() error {
	var first error
	for _, j := range s.js {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill abandons the store without the Close-time checkpoint, leaving every
// shard directory exactly as a crash would. Crash tests use it; production
// code wants Close.
func (s *ShardedStore) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.published.Store(nil)
	s.version.Add(1)
	s.mu.Unlock()
	s.closeJournals()
}

// Close checkpoints every shard and shuts the journals down. Further
// operations fail with ErrClosed.
func (s *ShardedStore) Close() error {
	if _, err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
		s.mu.Lock()
		s.closed = true
		s.published.Store(nil)
		s.version.Add(1)
		s.mu.Unlock()
		s.closeJournals()
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.published.Store(nil)
	s.version.Add(1)
	s.mu.Unlock()
	return s.closeJournals()
}
