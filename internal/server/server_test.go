package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vmalloc"
	"vmalloc/internal/journal"
)

func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s, err := Open(t.TempDir(), testNodes(6, 31), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func smallService(cpu float64) vmalloc.Service {
	req := vmalloc.Of(cpu, cpu)
	return vmalloc.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: vmalloc.Of(cpu, 0), NeedAgg: vmalloc.Of(cpu, 0),
	}
}

func TestHTTPLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Admit.
	var add addResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: ptr(smallService(0.05))}, &add)
	if code != http.StatusCreated {
		t.Fatalf("add: %d %s", code, raw)
	}

	// Admit with a distinct estimate.
	est := smallService(0.05)
	est.NeedAgg = vmalloc.Of(0.08, 0)
	var add2 addResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services",
		addRequest{True: ptr(smallService(0.05)), Est: &est}, &add2); code != http.StatusCreated {
		t.Fatalf("add with estimate: %d %s", code, raw)
	}

	// Threshold.
	if code, raw := doJSON(t, "PUT", ts.URL+"/v1/threshold", map[string]float64{"threshold": 0.2}, nil); code != http.StatusOK {
		t.Fatalf("threshold: %d %s", code, raw)
	}

	// Reallocate.
	var ep epochResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/reallocate", nil, &ep); code != http.StatusOK || !ep.Solved {
		t.Fatalf("reallocate: %d %s", code, raw)
	}
	if ep.Services != 2 || len(ep.Placement) != 2 {
		t.Fatalf("epoch response: %+v", ep)
	}

	// Update needs.
	needs := needsRequest{
		TrueElem: vmalloc.Of(0.07, 0), TrueAgg: vmalloc.Of(0.07, 0),
		EstElem: vmalloc.Of(0.07, 0), EstAgg: vmalloc.Of(0.07, 0),
	}
	url := fmt.Sprintf("%s/v1/services/%d/needs", ts.URL, add.ID)
	if code, raw := doJSON(t, "PUT", url, needs, nil); code != http.StatusOK {
		t.Fatalf("update needs: %d %s", code, raw)
	}

	// Min yield.
	var my map[string]float64
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/minyield?policy=allocweights", nil, &my); code != http.StatusOK {
		t.Fatalf("minyield: %d %s", code, raw)
	}
	if y := my["min_yield"]; y <= 0 || y > 1 {
		t.Fatalf("min yield %v out of range", y)
	}

	// Repair with default budget (empty body).
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/repair", nil, &ep); code != http.StatusOK {
		t.Fatalf("repair: %d %s", code, raw)
	}

	// Snapshot exposes the live services in stable JSON.
	var st vmalloc.ClusterState
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/snapshot", nil, &st); code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, raw)
	}
	if len(st.Services) != 2 {
		t.Fatalf("snapshot has %d services, want 2", len(st.Services))
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("snapshot state invalid: %v", err)
	}

	// Forced checkpoint.
	var seq map[string]uint64
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/snapshot", nil, &seq); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, raw)
	}

	// Remove, then the id is gone.
	if code, raw := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/services/%d", ts.URL, add.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("remove: %d %s", code, raw)
	}
	if code, _ := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/services/%d", ts.URL, add.ID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("second remove: %d, want 404", code)
	}

	// Stats reflect the history.
	var stats Stats
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, raw)
	}
	if stats.Adds != 2 || stats.Removes != 1 || stats.Epochs != 2 || stats.Services != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t)

	// Malformed body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/services", bytes.NewBufferString("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}

	// Missing true service.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/services", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing service: %d", code)
	}

	// Negative vector entries rejected by the stable decoder.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/services", map[string]any{
		"true": map[string]any{"req_elem": []float64{-1, 0}, "req_agg": []float64{1, 1},
			"need_elem": []float64{0, 0}, "need_agg": []float64{0, 0}},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative vector: %d", code)
	}

	// Wrong dimensionality caught by cluster validation.
	bad := vmalloc.Service{ReqElem: vmalloc.Of(1), ReqAgg: vmalloc.Of(1),
		NeedElem: vmalloc.Of(1), NeedAgg: vmalloc.Of(1)}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: &bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong dims: %d", code)
	}

	// Impossible service: 409.
	huge := smallService(1e9)
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: &huge}, nil); code != http.StatusConflict {
		t.Fatalf("impossible service: %d, want 409", code)
	}

	// Bad threshold.
	if code, _ := doJSON(t, "PUT", ts.URL+"/v1/threshold", map[string]float64{"threshold": -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative threshold: %d", code)
	}

	// Bad policy.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/minyield?policy=nope", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad policy: %d", code)
	}

	// Bad id.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/services/abc", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", code)
	}
	if code, _ := doJSON(t, "PUT", ts.URL+"/v1/services/999/needs", needsRequest{
		TrueElem: vmalloc.Of(0.1, 0), TrueAgg: vmalloc.Of(0.1, 0),
		EstElem: vmalloc.Of(0.1, 0), EstAgg: vmalloc.Of(0.1, 0),
	}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id needs: %d, want 404", code)
	}
}

// TestHTTPConcurrentMutations exercises the commit pipeline under the race
// detector: concurrent admissions, reads and epochs must serialize cleanly
// and every accepted admission must be durable and distinct.
func TestHTTPConcurrentMutations(t *testing.T) {
	s, ts := newTestServer(t)
	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	ids := make(chan int, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var add addResponse
				code, raw := doJSON(t, "POST", ts.URL+"/v1/services",
					addRequest{True: ptr(smallService(0.001 + 0.0001*float64(w)))}, &add)
				switch code {
				case http.StatusCreated:
					ids <- add.ID
				case http.StatusConflict:
					// full cluster is a legal outcome
				default:
					t.Errorf("worker %d: add returned %d %s", w, code, raw)
					return
				}
				if i%4 == 0 {
					doJSON(t, "GET", ts.URL+"/v1/snapshot", nil, nil)
					doJSON(t, "GET", ts.URL+"/v1/stats", nil, nil)
				}
			}
		}(w)
	}
	// One epoch runner in parallel with the admissions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			doJSON(t, "POST", ts.URL+"/v1/reallocate", nil, nil)
		}
	}()
	wg.Wait()
	close(ids)

	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d handed out", id)
		}
		seen[id] = true
	}
	if len(seen) == 0 {
		t.Fatal("no admissions succeeded")
	}
	stats := s.Stats()
	if stats.Adds != uint64(len(seen)) {
		t.Fatalf("stats.Adds=%d, accepted %d", stats.Adds, len(seen))
	}
	if stats.Records == 0 || stats.LastSeq == 0 {
		t.Fatalf("nothing journaled: %+v", stats)
	}
}

func ptr[T any](v T) *T { return &v }
