package server

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusTextConformance validates the full registry output against
// the text exposition format (version 0.0.4) with a strict parser: metric
// and label name grammar, label-value escaping, HELP-before-TYPE ordering,
// family contiguity, series uniqueness, histogram bucket monotonicity and
// the +Inf bucket equalling _count. The registry is populated by real
// traffic first so every family kind (counter vec, histogram vec,
// scrape-time collector, histogram snapshot) has samples.
func TestPrometheusTextConformance(t *testing.T) {
	_, _, ts := newObservedServer(t, nil)

	// Exercise the surface: admissions (single + batch), an error, a remove,
	// an update, epochs, stats — so counters, histograms and the epoch ring
	// all have data behind them.
	var add addResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: ptr(smallService(0.05))}, &add); code != http.StatusCreated {
		t.Fatalf("add: %d %s", code, raw)
	}
	doJSON(t, "POST", ts.URL+"/v1/services:batch", map[string]any{
		"services": []addRequest{{True: ptr(smallService(0.04))}, {True: ptr(smallService(0.03))}},
	}, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/services/999999", nil, nil) // 404
	doJSON(t, "DELETE", fmt.Sprintf("%s/v1/services/%d", ts.URL, add.ID), nil, nil)
	doJSON(t, "POST", ts.URL+"/v1/reallocate", nil, nil)
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, buf.String())
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// expoSample is one parsed sample line.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// checkExposition is the strict parser. It fails the test on the first
// violation, naming the offending line.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition does not end in a newline")
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	closed := map[string]bool{}
	seriesSeen := map[string]bool{}
	samplesByFamily := map[string][]expoSample{}
	current := ""

	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		ln := i + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln, line)
			}
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			if typeSeen[name] != "" {
				t.Fatalf("line %d: HELP for %s after its TYPE", ln, name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			if !helpSeen[name] {
				t.Fatalf("line %d: TYPE for %s without preceding HELP", ln, name)
			}
			if typeSeen[name] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid metric type %q", ln, typ)
			}
			typeSeen[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment line %q (only HELP and TYPE are emitted)", ln, line)
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln)
		default:
			s := parseSampleLine(t, ln, line)
			fam := sampleFamily(s.name, typeSeen)
			if fam == "" {
				t.Fatalf("line %d: sample %s has no declared family", ln, s.name)
			}
			if fam != current {
				if closed[fam] {
					t.Fatalf("line %d: family %s is not contiguous", ln, fam)
				}
				if current != "" {
					closed[current] = true
				}
				current = fam
			}
			key := s.name + "{" + canonicalLabels(s.labels) + "}"
			if seriesSeen[key] {
				t.Fatalf("line %d: duplicate series %s", ln, key)
			}
			seriesSeen[key] = true
			samplesByFamily[fam] = append(samplesByFamily[fam], s)
		}
	}

	histograms := 0
	for fam, typ := range typeSeen {
		if typ == "histogram" {
			histograms++
			checkHistogramFamily(t, fam, samplesByFamily[fam])
		}
	}
	if histograms == 0 {
		t.Fatal("no histogram family in the exposition (latency histograms missing)")
	}
	for _, must := range []string{
		"vmallocd_http_requests_total", "vmallocd_http_request_seconds",
		"vmallocd_journal_fsyncs_total", "vmallocd_epochs_total",
		"vmallocd_epoch_solve_seconds_total", "vmallocd_solver_work_total",
		"vmallocd_traces_started_total", "vmalloc_build_info",
		"vmallocd_goroutines",
	} {
		if typeSeen[must] == "" {
			t.Fatalf("family %s missing from the exposition", must)
		}
		if len(samplesByFamily[must]) == 0 {
			t.Fatalf("family %s declared but has no samples", must)
		}
	}
}

// sampleFamily maps a sample name to its declared family: histogram series
// use the _bucket/_sum/_count suffixes of a histogram-typed base name.
func sampleFamily(name string, typeSeen map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name && typeSeen[base] == "histogram" {
			return base
		}
	}
	if typ := typeSeen[name]; typ != "" && typ != "histogram" {
		return name
	}
	return ""
}

// parseSampleLine parses `name[{labels}] value`, validating name and label
// grammar and the escaping inside label values.
func parseSampleLine(t *testing.T, ln int, line string) expoSample {
	t.Helper()
	s := expoSample{labels: map[string]string{}, line: ln}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.name = rest[:brace]
		rest = rest[brace+1:]
		rest = parseLabels(t, ln, rest, s.labels)
	} else {
		if space < 0 {
			t.Fatalf("line %d: no value: %q", ln, line)
		}
		s.name = rest[:space]
		rest = rest[space:]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", ln, s.name)
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("line %d: expected value [timestamp], got %q", ln, rest)
	}
	v, err := parseExpoValue(fields[0])
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, fields[0], err)
	}
	s.value = v
	return s
}

// parseLabels consumes `k="v",...}` and returns what follows the brace.
func parseLabels(t *testing.T, ln int, rest string, out map[string]string) string {
	t.Helper()
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			t.Fatalf("line %d: malformed labels near %q", ln, rest)
		}
		name := rest[:eq]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("line %d: invalid label name %q", ln, name)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("line %d: duplicate label %q", ln, name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			t.Fatalf("line %d: label %s value not quoted", ln, name)
		}
		rest = rest[1:]
		var val strings.Builder
	scan:
		for {
			if len(rest) == 0 {
				t.Fatalf("line %d: unterminated label value for %s", ln, name)
			}
			switch rest[0] {
			case '"':
				rest = rest[1:]
				break scan
			case '\\':
				if len(rest) < 2 {
					t.Fatalf("line %d: dangling escape in label %s", ln, name)
				}
				switch rest[1] {
				case '\\', '"':
					val.WriteByte(rest[1])
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: invalid escape \\%c in label %s", ln, rest[1], name)
				}
				rest = rest[2:]
			default:
				val.WriteByte(rest[0])
				rest = rest[1:]
			}
		}
		out[name] = val.String()
		if len(rest) == 0 {
			t.Fatalf("line %d: labels not closed", ln)
		}
		switch rest[0] {
		case ',':
			rest = rest[1:]
		case '}':
			return rest[1:]
		default:
			t.Fatalf("line %d: expected , or } after label, got %q", ln, rest[0])
		}
	}
}

func parseExpoValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogramFamily verifies each child (label set minus le): buckets in
// ascending le order with non-decreasing cumulative counts, a +Inf bucket
// present, and +Inf == _count, with _sum and _count present exactly once.
func checkHistogramFamily(t *testing.T, fam string, samples []expoSample) {
	t.Helper()
	type hist struct {
		les     []float64
		cums    []float64
		count   *float64
		sum     bool
		inf     *float64
		buckets int
	}
	children := map[string]*hist{}
	childOf := func(s expoSample, dropLe bool) *hist {
		labels := map[string]string{}
		for k, v := range s.labels {
			if dropLe && k == "le" {
				continue
			}
			labels[k] = v
		}
		key := canonicalLabels(labels)
		h, ok := children[key]
		if !ok {
			h = &hist{}
			children[key] = h
		}
		return h
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s line %d: bucket without le label", fam, s.line)
			}
			h := childOf(s, true)
			h.buckets++
			if le == "+Inf" {
				v := s.value
				h.inf = &v
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s line %d: unparseable le %q", fam, s.line, le)
			}
			if h.inf != nil {
				t.Fatalf("%s line %d: finite bucket after +Inf", fam, s.line)
			}
			h.les = append(h.les, bound)
			h.cums = append(h.cums, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			childOf(s, false).sum = true
		case strings.HasSuffix(s.name, "_count"):
			h := childOf(s, false)
			v := s.value
			h.count = &v
		default:
			t.Fatalf("%s line %d: stray sample %s in histogram family", fam, s.line, s.name)
		}
	}
	for key, h := range children {
		if h.inf == nil {
			t.Fatalf("%s{%s}: no +Inf bucket", fam, key)
		}
		if h.count == nil || !h.sum {
			t.Fatalf("%s{%s}: missing _count or _sum", fam, key)
		}
		if *h.inf != *h.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", fam, key, *h.inf, *h.count)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Fatalf("%s{%s}: bucket bounds not ascending: %v after %v", fam, key, h.les[i], h.les[i-1])
			}
			if h.cums[i] < h.cums[i-1] {
				t.Fatalf("%s{%s}: cumulative counts decrease: %v after %v at le=%v",
					fam, key, h.cums[i], h.cums[i-1], h.les[i])
			}
		}
		if n := len(h.les); n > 0 && *h.inf < h.cums[n-1] {
			t.Fatalf("%s{%s}: +Inf bucket %v below last finite bucket %v", fam, key, *h.inf, h.cums[n-1])
		}
	}
}

// canonicalLabels renders a label map sorted by key, for series identity.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// insertion sort: tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
