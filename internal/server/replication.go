package server

import (
	"errors"
	"fmt"

	"vmalloc/internal/journal"
)

// This file is the leader-side replication surface of the durable tier: a
// sharded store exposes its shard manifest, per-shard bootstrap checkpoints,
// raw committed WAL frames and integrity-chain status, which the HTTP layer
// serves under /v1/replica/* and a follower daemon consumes (internal/replica).
//
// Replication is sharded-only by design: the follower replays through the
// same ShardedRestore seam crash recovery uses, so every replicated byte
// travels the code path that is already proven byte-identical by the
// recovery tests.

// ErrReadOnly is returned by mutations on a store that is following a leader
// and has not been promoted. The HTTP layer maps it to 503 with Retry-After,
// so well-behaved clients back off and retry against the promoted store.
var ErrReadOnly = errors.New("server: read-only replica (not promoted)")

// ErrCompacted re-exports the journal's compaction sentinel: the requested
// stream cursor predates the oldest retained segment and the follower must
// re-bootstrap from a checkpoint. The HTTP layer maps it to 410 Gone.
var ErrCompacted = journal.ErrCompacted

// StreamBatch is one batch of raw committed WAL frames covering sequence
// numbers [First, Last] of one shard. Data is served and applied verbatim —
// the follower's WAL stays a byte-identical prefix of the leader's.
type StreamBatch struct {
	First uint64
	Last  uint64
	Data  []byte
}

// ShardChain is the integrity-chain status of one shard journal: the acked
// (barrier-durable) high-water mark, the chain head over every committed
// record, and the persisted checkpoint ledger. A promoting follower compares
// its own ledger against this to verify it holds the same history
// (journal.CompareChains localizes any divergence in O(log n) checkpoints).
type ShardChain struct {
	Shard        int                  `json:"shard"`
	CommittedSeq uint64               `json:"committed_seq"`
	Head         journal.ChainPoint   `json:"head"`
	Entries      []journal.ChainPoint `json:"entries"`
}

// replicaSource is the optional leader-side replication surface; a store
// that provides it (ShardedStore) additionally serves the /v1/replica/*
// read endpoints.
type replicaSource interface {
	ReplicaManifest() (*ShardManifest, error)
	ReplicaCheckpoint(shard int) (*journal.Checkpoint, error)
	ReplicaStream(shard int, from uint64, maxBytes int) (*StreamBatch, error)
	ChainStatus() ([]ShardChain, error)
}

// replicaStatser is the optional follower-side surface: lag and cursor
// telemetry served on GET /v1/replica/status and exported as metrics.
type replicaStatser interface {
	ReplicationStatus() *ReplicationStatus
}

// promoter is the optional failover surface: POST /v1/promote flips a
// following store into a writable leader after verifying it caught up.
type promoter interface {
	Promote() error
}

// readier is the optional readiness surface behind GET /readyz: nil means
// the store can serve its role (journal writable; for a follower, within
// the configured lag bound). Distinct from /healthz, which only says the
// process is alive.
type readier interface {
	Ready() error
}

// ReplicationStatus describes a follower's progress against its leader.
type ReplicationStatus struct {
	// Leader is the leader base URL the follower pulls from.
	Leader string `json:"leader"`
	// Shards holds one entry per shard journal.
	Shards []FollowerShardStatus `json:"shards"`
	// Batches and Records count everything applied since the follower
	// started; Retries counts transient pull failures that were retried.
	Batches uint64 `json:"batches"`
	Records uint64 `json:"records"`
	Retries uint64 `json:"retries"`
	// Bootstraps counts checkpoint re-bootstraps (cursor compacted away).
	Bootstraps uint64 `json:"bootstraps"`
	// Promoted reports whether this process has been promoted to leader.
	Promoted bool `json:"promoted"`
}

// FollowerShardStatus is one shard's replication cursor.
type FollowerShardStatus struct {
	Shard int `json:"shard"`
	// AppliedSeq is the last sequence applied durably to the local WAL.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the leader's committed seq at the last successful poll.
	LeaderSeq uint64 `json:"leader_seq"`
	// Lag is max(0, LeaderSeq-AppliedSeq) at the last poll.
	Lag uint64 `json:"lag"`
	// BytesBehind estimates the backlog still to pull: Lag multiplied by
	// this shard's mean applied record size (0 until anything has applied).
	BytesBehind uint64 `json:"bytes_behind"`
	// SecondsSinceApplied is how long ago the newest record applied to this
	// shard (time since the follower opened when nothing has applied yet).
	SecondsSinceApplied float64 `json:"seconds_since_applied"`
}

// Ready reports whether the store can serve traffic: open and with a
// writable journal. (ErrClosed or the sticky journal fault otherwise.)
func (s *Store) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.j.Err(); err != nil {
		return fmt.Errorf("server: journal failed: %w", err)
	}
	return nil
}

// Ready reports whether the sharded store can serve traffic: open and with
// every shard journal writable.
func (s *ShardedStore) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for i, j := range s.js {
		if err := j.Err(); err != nil {
			return fmt.Errorf("server: shard %d journal failed: %w", i, err)
		}
	}
	return nil
}

// ReplicaManifest returns the shard manifest a follower must mirror.
func (s *ShardedStore) ReplicaManifest() (*ShardManifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.manifest, nil
}

// ReplicaCheckpoint returns the newest durable checkpoint of one shard for
// follower bootstrap. A leader always has one (the bootstrap checkpoint is
// written on first boot); if compaction raced it away a fresh checkpoint is
// forced.
func (s *ShardedStore) ReplicaCheckpoint(shard int) (*journal.Checkpoint, error) {
	j, err := s.shardJournal(shard)
	if err != nil {
		return nil, err
	}
	cp, err := j.LatestCheckpoint()
	if err != nil {
		return nil, err
	}
	if cp == nil {
		if _, err := s.Checkpoint(); err != nil {
			return nil, err
		}
		if cp, err = j.LatestCheckpoint(); err != nil {
			return nil, err
		}
		if cp == nil {
			return nil, fmt.Errorf("server: shard %d has no checkpoint", shard)
		}
	}
	return cp, nil
}

// ReplicaStream returns raw committed frames of one shard starting after
// cursor `from`, at most maxBytes (best-effort; at least one frame when any
// is committed). A nil batch means the follower is caught up. ErrCompacted
// means the cursor predates retention and the follower must re-bootstrap.
func (s *ShardedStore) ReplicaStream(shard int, from uint64, maxBytes int) (*StreamBatch, error) {
	j, err := s.shardJournal(shard)
	if err != nil {
		return nil, err
	}
	data, first, last, err := j.ReadEncoded(from, maxBytes)
	if err != nil {
		return nil, err
	}
	if first == 0 {
		return nil, nil
	}
	return &StreamBatch{First: first, Last: last, Data: data}, nil
}

// ChainStatus returns the committed high-water mark, chain head and
// checkpoint ledger of every shard journal.
func (s *ShardedStore) ChainStatus() ([]ShardChain, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	js := s.js
	s.mu.Unlock()
	out := make([]ShardChain, len(js))
	for i, j := range js {
		out[i] = ShardChain{
			Shard:        i,
			CommittedSeq: j.CommittedSeq(),
			Head:         j.CommittedHead(),
			Entries:      j.Entries(),
		}
	}
	return out, nil
}

func (s *ShardedStore) shardJournal(shard int) (*journal.Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if shard < 0 || shard >= len(s.js) {
		return nil, invalid(fmt.Errorf("shard %d of %d", shard, len(s.js)))
	}
	return s.js[shard], nil
}
