package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"vmalloc"
	"vmalloc/internal/obs"
)

// API is the store surface the HTTP handler serves. Both the single-domain
// Store and the ShardedStore implement it; mutations must be durable when
// the call returns.
type API interface {
	AddWithEstimate(trueSvc, estSvc vmalloc.Service) (id, node int, err error)
	AddBatch(specs []AddSpec) ([]AddOutcome, error)
	Remove(id int) (bool, error)
	UpdateNeeds(id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error
	SetThreshold(th float64) error
	Reallocate() (*vmalloc.ClusterEpoch, error)
	Repair(budget int) (*vmalloc.ClusterEpoch, error)
	MinYield(policy vmalloc.SchedPolicy) (float64, error)
	State() (*vmalloc.ClusterState, []byte, error)
	Checkpoint() (uint64, error)
	Stats() Stats
}

// shardStatser is the optional per-shard statistics surface; a store that
// provides it (ShardedStore) additionally serves GET /v1/shards.
type shardStatser interface {
	ShardStats() ([]vmalloc.ShardStat, error)
}

// route is one entry of the HTTP surface: a method, a ServeMux pattern and
// the handler serving it.
type route struct {
	method  string
	pattern string
	h       http.HandlerFunc
}

// Routes returns "METHOD /path" for every endpoint a fully-equipped vmallocd
// can serve (sharded store, metrics enabled), in registration order. It is
// the single source of truth the docs coverage test diffs docs/api.md
// against — adding a route here without documenting it fails CI.
func Routes() []string {
	ss := struct {
		API
		shardStatser
		replicaSource
		replicaStatser
		promoter
		readier
	}{}
	rs := routes(ss, &Metrics{}, &obs.Observer{})
	out := make([]string, len(rs))
	for i, rt := range rs {
		out[i] = rt.method + " " + rt.pattern
	}
	return out
}

// maxBatchServices caps one bulk admission request; larger batches gain
// nothing (the journal group is already one fsync) and only grow tail
// latency and response size.
const maxBatchServices = 4096

// routes builds the route table over s. GET /v1/shards is served only by
// sharded stores, GET /metrics only when metrics are enabled and the
// /v1/debug/* surface only with an observer; all are still part of the
// documented surface (see Routes).
func routes(s API, m *Metrics, o *obs.Observer) []route {
	ca := newCtxCalls(s)
	rs := []route{
		{"POST", "/v1/services", func(w http.ResponseWriter, r *http.Request) {
			var req addRequest
			if !decodeBody(w, r, &req) {
				return
			}
			if req.True == nil {
				httpError(w, http.StatusBadRequest, errors.New(`missing "true" service`))
				return
			}
			est := req.True
			if req.Est != nil {
				est = req.Est
			}
			id, node, err := ca.AddWithEstimate(r.Context(), *req.True, *est)
			if err != nil {
				if errors.Is(err, ErrRejected) {
					httpError(w, http.StatusConflict, err)
				} else {
					mutationError(w, err)
				}
				return
			}
			writeJSON(w, http.StatusCreated, addResponse{ID: id, Node: node})
		}},
		{"POST", "/v1/services:batch", func(w http.ResponseWriter, r *http.Request) {
			var req batchRequest
			if !decodeBody(w, r, &req) {
				return
			}
			if len(req.Services) == 0 {
				httpError(w, http.StatusBadRequest, errors.New(`empty batch: "services" must hold at least one entry`))
				return
			}
			if len(req.Services) > maxBatchServices {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("batch of %d services exceeds the limit of %d", len(req.Services), maxBatchServices))
				return
			}
			results := make([]batchEntryResponse, len(req.Services))
			specs := make([]AddSpec, 0, len(req.Services))
			idx := make([]int, 0, len(req.Services))
			for i, e := range req.Services {
				if e.True == nil {
					results[i] = batchEntryResponse{Error: `missing "true" service`, Status: http.StatusBadRequest}
					continue
				}
				est := e.True
				if e.Est != nil {
					est = e.Est
				}
				specs = append(specs, AddSpec{True: *e.True, Est: *est})
				idx = append(idx, i)
			}
			outs, err := ca.AddBatch(r.Context(), specs)
			if err != nil {
				mutationError(w, err)
				return
			}
			for k, o := range outs {
				switch {
				case o.Err == nil:
					id, node := o.ID, o.Node
					results[idx[k]] = batchEntryResponse{ID: &id, Node: &node}
				case errors.Is(o.Err, ErrRejected):
					results[idx[k]] = batchEntryResponse{Error: o.Err.Error(), Status: http.StatusConflict}
				default:
					results[idx[k]] = batchEntryResponse{Error: o.Err.Error(), Status: http.StatusBadRequest}
				}
			}
			resp := batchResponse{Results: results}
			for _, res := range results {
				switch {
				case res.ID != nil:
					resp.Admitted++
				case res.Status == http.StatusConflict:
					resp.Rejected++
				default:
					resp.Invalid++
				}
			}
			writeJSON(w, http.StatusOK, resp)
		}},
		{"DELETE", "/v1/services/{id}", func(w http.ResponseWriter, r *http.Request) {
			id, ok := pathID(w, r)
			if !ok {
				return
			}
			removed, err := ca.Remove(r.Context(), id)
			if err != nil {
				mutationError(w, err)
				return
			}
			if !removed {
				httpError(w, http.StatusNotFound, fmt.Errorf("no live service with id %d", id))
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
		}},
		{"PUT", "/v1/services/{id}/needs", func(w http.ResponseWriter, r *http.Request) {
			id, ok := pathID(w, r)
			if !ok {
				return
			}
			var req needsRequest
			if !decodeBody(w, r, &req) {
				return
			}
			if err := ca.UpdateNeeds(r.Context(), id, req.TrueElem, req.TrueAgg, req.EstElem, req.EstAgg); err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"updated": true})
		}},
		{"PUT", "/v1/threshold", func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Threshold *float64 `json:"threshold"`
			}
			if !decodeBody(w, r, &req) {
				return
			}
			if req.Threshold == nil {
				httpError(w, http.StatusBadRequest, errors.New("threshold must be a number >= 0"))
				return
			}
			if err := ca.SetThreshold(r.Context(), *req.Threshold); err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]float64{"threshold": *req.Threshold})
		}},
		{"POST", "/v1/reallocate", func(w http.ResponseWriter, r *http.Request) {
			ce, err := ca.Reallocate(r.Context())
			if err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, epochResponse{
				Solved: ce.Result.Solved, MinYield: ce.Result.MinYield,
				Migrations: ce.Migrations, Services: len(ce.IDs),
				IDs: ce.IDs, Placement: ce.Result.Placement,
				Stats: ce.Stats,
			})
		}},
		{"POST", "/v1/repair", func(w http.ResponseWriter, r *http.Request) {
			req := struct {
				Budget int `json:"budget"`
			}{Budget: -1}
			// The body is optional: absent (including a chunked request whose
			// body turns out empty, where ContentLength is -1) selects the
			// default unlimited budget.
			if !decodeOptionalBody(w, r, &req) {
				return
			}
			ce, err := ca.Repair(r.Context(), req.Budget)
			if err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, epochResponse{
				Solved: ce.Result.Solved, MinYield: ce.Result.MinYield,
				Migrations: ce.Migrations, Services: len(ce.IDs),
				IDs: ce.IDs, Placement: ce.Result.Placement,
				Stats: ce.Stats,
			})
		}},
		{"GET", "/v1/minyield", func(w http.ResponseWriter, r *http.Request) {
			policy, err := parsePolicy(r.URL.Query().Get("policy"))
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			y, err := s.MinYield(policy)
			if err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]float64{"min_yield": y})
		}},
		{"GET", "/v1/stats", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.Stats())
		}},
	}
	if ss, ok := s.(shardStatser); ok {
		rs = append(rs, route{"GET", "/v1/shards", func(w http.ResponseWriter, r *http.Request) {
			stats, err := ss.ShardStats()
			if err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, stats)
		}})
	}
	rs = append(rs,
		route{"GET", "/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
			_, data, err := s.State()
			if err != nil {
				mutationError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(data)
		}},
		route{"POST", "/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
			seq, err := s.Checkpoint()
			if err != nil {
				mutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]uint64{"seq": seq})
		}},
	)
	rs = append(rs, replicaRoutes(s)...)
	if m != nil {
		rs = append(rs, route{"GET", "/metrics", m.serveText})
	}
	if o != nil {
		rs = append(rs, debugRoutes(o)...)
	}
	rs = append(rs, route{"GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	}})
	rs = append(rs, route{"GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		if rd, ok := s.(readier); ok {
			if err := rd.Ready(); err != nil {
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	}})
	return rs
}

// replicaRoutes builds the replication and failover endpoints a store's
// optional interfaces enable: the /v1/replica/* leader surface
// (replicaSource), the follower status endpoint (replicaStatser) and
// explicit promotion (promoter).
func replicaRoutes(s API) []route {
	var rs []route
	if src, ok := s.(replicaSource); ok {
		rs = append(rs,
			route{"GET", "/v1/replica/manifest", func(w http.ResponseWriter, r *http.Request) {
				m, err := src.ReplicaManifest()
				if err != nil {
					mutationError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, m)
			}},
			route{"GET", "/v1/replica/checkpoint", func(w http.ResponseWriter, r *http.Request) {
				shard, ok := queryInt(w, r, "shard", 0)
				if !ok {
					return
				}
				cp, err := src.ReplicaCheckpoint(shard)
				if err != nil {
					mutationError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, cp)
			}},
			route{"GET", "/v1/replica/stream", func(w http.ResponseWriter, r *http.Request) {
				shard, ok := queryInt(w, r, "shard", 0)
				if !ok {
					return
				}
				from, ok := queryUint64(w, r, "from", 0)
				if !ok {
					return
				}
				max, ok := queryInt(w, r, "max", defaultStreamBytes)
				if !ok {
					return
				}
				if max <= 0 || max > maxStreamBytes {
					max = maxStreamBytes
				}
				b, err := src.ReplicaStream(shard, from, max)
				if errors.Is(err, ErrCompacted) {
					httpError(w, http.StatusGone, err)
					return
				}
				if err != nil {
					mutationError(w, err)
					return
				}
				if b == nil {
					w.WriteHeader(http.StatusNoContent)
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set(streamFirstHeader, strconv.FormatUint(b.First, 10))
				w.Header().Set(streamLastHeader, strconv.FormatUint(b.Last, 10))
				w.WriteHeader(http.StatusOK)
				w.Write(b.Data)
			}},
			route{"GET", "/v1/replica/chains", func(w http.ResponseWriter, r *http.Request) {
				cs, err := src.ChainStatus()
				if err != nil {
					mutationError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, cs)
			}},
		)
	}
	if st, ok := s.(replicaStatser); ok {
		rs = append(rs, route{"GET", "/v1/replica/status", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, st.ReplicationStatus())
		}})
	}
	if p, ok := s.(promoter); ok {
		rs = append(rs, route{"POST", "/v1/promote", func(w http.ResponseWriter, r *http.Request) {
			if err := p.Promote(); err != nil {
				if errors.Is(err, ErrInvalid) || errors.Is(err, ErrClosed) {
					mutationError(w, err)
				} else {
					httpError(w, http.StatusConflict, err)
				}
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"promoted": true})
		}})
	}
	return rs
}

// Stream batch size bounds: the default keeps a poll response comfortably
// under one segment; the cap bounds the response the handler will build.
const (
	defaultStreamBytes = 1 << 20
	maxStreamBytes     = 8 << 20
)

// streamFirstHeader/streamLastHeader carry the record range of a stream
// batch response.
const (
	streamFirstHeader = "Vmalloc-First-Seq"
	streamLastHeader  = "Vmalloc-Last-Seq"
)

func queryInt(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, true
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid %s %q", name, q))
		return 0, false
	}
	return v, true
}

func queryUint64(w http.ResponseWriter, r *http.Request, name string, def uint64) (uint64, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, true
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid %s %q", name, q))
		return 0, false
	}
	return v, true
}

// Handler returns the vmallocd HTTP/JSON API over a store, without metrics:
//
//	POST   /v1/services            admit a service            {"true":{...},"est":{...}}
//	POST   /v1/services:batch      bulk admission             {"services":[{"true":{...}},...]}
//	DELETE /v1/services/{id}       depart a service
//	PUT    /v1/services/{id}/needs replace fluid needs        {"true_elem":[...],...}
//	PUT    /v1/threshold           set mitigation threshold   {"threshold":0.3}
//	POST   /v1/reallocate          run a full epoch
//	POST   /v1/repair              run a bounded repair epoch {"budget":4}
//	GET    /v1/minyield?policy=P   evaluate §6 min yield (ALLOCCAPS|ALLOCWEIGHTS|EQUALWEIGHTS)
//	GET    /v1/stats               counters
//	GET    /v1/shards              per-shard statistics (sharded store only)
//	GET    /v1/snapshot            full cluster state (stable JSON)
//	POST   /v1/snapshot            force a checkpoint
//	GET    /healthz                liveness
//
// NewHandler additionally serves GET /metrics and per-endpoint
// instrumentation; NewObservedHandler adds request tracing and the
// /v1/debug/* surface. docs/api.md is the full reference; a test keeps it
// in lockstep with this table.
//
// Mutations are serialized through the store's commit pipeline and are
// durable when the response arrives; reads are lock-free against published
// state. Request bodies must be a single JSON value: trailing bytes after
// the value are rejected with 400 rather than silently ignored.
func Handler(s API) http.Handler { return NewHandler(s, nil) }

// NewHandler returns the vmallocd HTTP/JSON API over a store. When m is
// non-nil every endpoint is instrumented (request counts and latency
// histograms by method, path pattern and status code) and GET /metrics
// serves the Prometheus text exposition.
func NewHandler(s API, m *Metrics) http.Handler {
	return NewObservedHandler(s, m, nil, nil)
}

// NewObservedHandler is NewHandler with operational telemetry: a non-nil
// observer enables request tracing (X-Request-Id correlation, a span tree
// per request) and serves GET /v1/debug/traces and GET /v1/debug/epochs; a
// non-nil logger emits one structured line per request, stamped with the
// request id. GET /metrics and /v1/debug/* are excluded from both latency
// instrumentation and tracing so the scrape path cannot pollute what it
// reads.
func NewObservedHandler(s API, m *Metrics, o *obs.Observer, lg *slog.Logger) http.Handler {
	mux := http.NewServeMux()
	tracer := o.TracerOf()
	for _, rt := range routes(s, m, o) {
		h := rt.h
		if instrumented(rt.pattern) {
			if m != nil {
				h = m.instrument(rt.method, rt.pattern, h)
			}
			h = observe(rt.method, rt.pattern, tracer, lg, h)
		}
		mux.HandleFunc(rt.method+" "+rt.pattern, h)
	}
	return mux
}

type addRequest struct {
	True *vmalloc.Service `json:"true"`
	Est  *vmalloc.Service `json:"est,omitempty"`
}

type addResponse struct {
	ID   int `json:"id"`
	Node int `json:"node"`
}

type batchRequest struct {
	Services []addRequest `json:"services"`
}

// batchEntryResponse reports one entry of a bulk admission: either an
// assigned id and node, or the error and the HTTP status the same request
// would have drawn as a single POST /v1/services.
type batchEntryResponse struct {
	ID     *int   `json:"id,omitempty"`
	Node   *int   `json:"node,omitempty"`
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
}

type batchResponse struct {
	Results  []batchEntryResponse `json:"results"`
	Admitted int                  `json:"admitted"`
	Rejected int                  `json:"rejected"`
	Invalid  int                  `json:"invalid"`
}

type needsRequest struct {
	TrueElem vmalloc.Vec `json:"true_elem"`
	TrueAgg  vmalloc.Vec `json:"true_agg"`
	EstElem  vmalloc.Vec `json:"est_elem"`
	EstAgg   vmalloc.Vec `json:"est_agg"`
}

type epochResponse struct {
	Solved     bool              `json:"solved"`
	MinYield   float64           `json:"min_yield"`
	Migrations int               `json:"migrations"`
	Services   int               `json:"services"`
	IDs        []int             `json:"ids"`
	Placement  vmalloc.Placement `json:"placement"`
	// Stats carries the epoch's solve wall time, solver-tier work counters
	// and (sharded stores) the per-shard breakdown.
	Stats *vmalloc.EpochStats `json:"stats,omitempty"`
}

func parsePolicy(s string) (vmalloc.SchedPolicy, error) {
	switch strings.ToUpper(s) {
	case "", "ALLOCCAPS":
		return vmalloc.PolicyAllocCaps, nil
	case "ALLOCWEIGHTS":
		return vmalloc.PolicyAllocWeights, nil
	case "EQUALWEIGHTS":
		return vmalloc.PolicyEqualWeights, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want ALLOCCAPS, ALLOCWEIGHTS or EQUALWEIGHTS)", s)
}

func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid service id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// decodeBody parses the request body as exactly one JSON value into v. A
// second Decode must hit io.EOF, so trailing garbage after the value
// (`{"budget":1}{"budget":9}` used to be silently half-read) is a 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	ok, _ := decodeJSON(w, r, v, true)
	return ok
}

// decodeOptionalBody is decodeBody for endpoints whose body is optional: a
// missing or empty body (io.EOF before any value, which is also what an
// empty chunked body with ContentLength -1 yields) leaves v at its
// defaults. Trailing garbage is still rejected.
func decodeOptionalBody(w http.ResponseWriter, r *http.Request, v any) bool {
	ok, _ := decodeJSON(w, r, v, false)
	return ok
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any, required bool) (ok, present bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) && !required {
			return true, false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false, false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest,
			errors.New("decoding request: trailing data after JSON body"))
		return false, true
	}
	return true, true
}

// mutationError maps store errors by type: validation problems (ErrInvalid)
// are the client's fault, an unknown id is 404, a closed store or an
// unpromoted replica is 503 (the replica adds Retry-After), and everything
// else — journal failure above all — is a 500.
func mutationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrReadOnly):
		// A follower refuses mutations; the client should retry against the
		// promoted store (or this one, shortly after its promotion).
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrInvalid):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, vmalloc.ErrUnknownService):
		httpError(w, http.StatusNotFound, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// errorResponse is the uniform error envelope. RequestID echoes the
// X-Request-Id the middleware stamped on the response, so a client holding
// a 5xx body can fetch the request's spans from GET /v1/debug/traces.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{
		Error:     err.Error(),
		RequestID: w.Header().Get(RequestIDHeader),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
