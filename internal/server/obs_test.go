package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmalloc/internal/faultfs"
	"vmalloc/internal/journal"
	"vmalloc/internal/obs"
)

// newObservedServer builds a store with a live observer and serves it
// through the fully instrumented handler (metrics + tracing middleware).
func newObservedServer(t *testing.T, opts *Options) (*Store, *obs.Observer, *httptest.Server) {
	t.Helper()
	if opts == nil {
		opts = &Options{Fsync: journal.FsyncNone}
	}
	o := obs.NewObserver()
	opts.Obs = o
	s, err := Open(t.TempDir(), testNodes(6, 31), opts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewObservedMetrics(s, o)
	ts := httptest.NewServer(NewObservedHandler(s, m, o, nil))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, o, ts
}

// TestRequestIDPropagation pins the correlation contract: a client-supplied
// X-Request-Id is echoed verbatim, a missing one is minted, and error
// envelopes carry the id in request_id.
func TestRequestIDPropagation(t *testing.T) {
	_, o, ts := newObservedServer(t, nil)

	// Client-supplied id propagates and names the trace.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-supplied-42" {
		t.Fatalf("X-Request-Id not echoed: got %q", got)
	}
	if _, ok := o.Tracer.Lookup("client-supplied-42"); !ok {
		t.Fatal("client-supplied id did not name the trace")
	}

	// A missing id is minted.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(RequestIDHeader)
	if minted == "" {
		t.Fatal("no X-Request-Id minted")
	}
	if _, ok := o.Tracer.Lookup(minted); !ok {
		t.Fatalf("minted id %q has no retained trace", minted)
	}

	// Error envelopes carry the id too.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/services/9999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 404, got %d", resp.StatusCode)
	}
	if env.RequestID == "" || env.RequestID != resp.Header.Get(RequestIDHeader) {
		t.Fatalf("error envelope request_id %q != header %q", env.RequestID, resp.Header.Get(RequestIDHeader))
	}
}

// TestDebugEndpoints drives an epoch and checks the retained-telemetry
// surface: the epoch ring records it with solver counters and a trace id
// that resolves to the span view of the same epoch.
func TestDebugEndpoints(t *testing.T) {
	_, _, ts := newObservedServer(t, nil)

	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: ptr(smallService(0.05))}, nil); code != http.StatusCreated {
		t.Fatalf("add: %d %s", code, raw)
	}
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/reallocate", nil, nil); code != http.StatusOK {
		t.Fatalf("reallocate: %d %s", code, raw)
	}

	var epochs debugEpochsResponse
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/debug/epochs", nil, &epochs); code != http.StatusOK {
		t.Fatalf("debug/epochs: %d %s", code, raw)
	}
	if epochs.Totals.Epochs < 1 || len(epochs.Epochs) < 1 {
		t.Fatalf("epoch ring empty after reallocate: totals %+v, %d records", epochs.Totals, len(epochs.Epochs))
	}
	rec := epochs.Epochs[0]
	if !rec.Solved || rec.TotalNs <= 0 {
		t.Fatalf("implausible epoch record: %+v", rec)
	}
	work := rec.Solver.LPSolves + rec.Solver.LPIterations + rec.Solver.VPPacks +
		rec.Solver.VPPacksSolved + rec.Solver.MILPNodes + rec.Solver.PresolveRowsEliminated
	if work == 0 {
		t.Fatalf("epoch record carries no solver work: %+v", rec.Solver)
	}
	if rec.TraceID == "" {
		t.Fatal("epoch record has no trace id")
	}

	// The trace id resolves to the span view of the same epoch.
	var traces []obs.TraceSnapshot
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/debug/traces?id="+rec.TraceID, nil, &traces); code != http.StatusOK {
		t.Fatalf("debug/traces?id: %d %s", code, raw)
	}
	if len(traces) != 1 || traces[0].ID != rec.TraceID {
		t.Fatalf("trace lookup returned %d traces", len(traces))
	}
	var hasEpochSpan bool
	for _, sp := range traces[0].Spans {
		if sp.Name == "epoch" {
			hasEpochSpan = true
		}
	}
	if !hasEpochSpan {
		t.Fatalf("epoch trace has no epoch span: %+v", traces[0].Spans)
	}

	// Unknown ids 404; the listing endpoint serves newest-first.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/debug/traces?id=no-such-trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: got %d, want 404", code)
	}
	traces = nil
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/debug/traces?limit=2", nil, &traces); code != http.StatusOK || len(traces) == 0 {
		t.Fatalf("trace listing: %d %s", code, raw)
	}
}

// TestDebugSurfacesNotInstrumented pins the exclusion rule: scraping
// /metrics or polling /v1/debug/* must not start traces (polling the trace
// ring must not evict what it reads) and must not land in the latency
// histograms.
func TestDebugSurfacesNotInstrumented(t *testing.T) {
	_, o, ts := newObservedServer(t, nil)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(raw)
	}

	before := o.Tracer.Started()
	get("/metrics")
	get("/v1/debug/traces")
	get("/v1/debug/epochs")
	if after := o.Tracer.Started(); after != before {
		t.Fatalf("debug/scrape surfaces started %d traces", after-before)
	}
	get("/v1/stats") // instrumented: exactly one new trace
	if after := o.Tracer.Started(); after != before+1 {
		t.Fatalf("instrumented request started %d traces, want 1", after-before)
	}

	body := get("/metrics")
	for _, excluded := range []string{`path="/metrics"`, `path="/v1/debug/traces"`, `path="/v1/debug/epochs"`} {
		if strings.Contains(body, excluded) {
			t.Fatalf("latency instrumentation includes excluded surface %s", excluded)
		}
	}
	if !strings.Contains(body, `path="/v1/stats"`) {
		t.Fatal("instrumented route missing from metrics")
	}
}

// TestInjectedFaultTraceable is the end-to-end incident-debugging contract:
// with fsync faults injected, a failed mutation's 5xx response carries an
// X-Request-Id (header and envelope) whose spans are retrievable from
// GET /v1/debug/traces — including the commit-pipeline spans that show
// where it died.
func TestInjectedFaultTraceable(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, 1)
	_, _, ts := newObservedServer(t, &Options{Fsync: journal.FsyncBatch, FS: inj})

	// A healthy mutation first, so the failure below is the journal's fault.
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/services", addRequest{True: ptr(smallService(0.05))}, nil); code != http.StatusCreated {
		t.Fatalf("healthy add: %d %s", code, raw)
	}

	inj.FailSyncs(0)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/services", strings.NewReader(
		`{"true": {"req_elem": [0.05, 0.05], "req_agg": [0.05, 0.05],
		           "need_elem": [0.05, 0], "need_agg": [0.05, 0]}}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("injected fsync fault did not 5xx: %d %s", resp.StatusCode, env.Error)
	}
	id := resp.Header.Get(RequestIDHeader)
	if id == "" {
		t.Fatal("5xx response carries no X-Request-Id")
	}
	if env.RequestID != id {
		t.Fatalf("envelope request_id %q != header %q", env.RequestID, id)
	}

	var traces []obs.TraceSnapshot
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/debug/traces?id="+id, nil, &traces); code != http.StatusOK {
		t.Fatalf("trace of failed request not retained: %d %s", code, raw)
	}
	tr := traces[0]
	if tr.Status < 500 {
		t.Fatalf("retained trace status %d, want the 5xx", tr.Status)
	}
	var hasApply bool
	for _, sp := range tr.Spans {
		if sp.Name == "apply" {
			hasApply = true
		}
	}
	if !hasApply {
		t.Fatalf("failed request's trace is missing commit-pipeline spans: %+v", tr.Spans)
	}
}
