// Package heapx provides a generic binary min-heap, replacing the
// interface{}-based container/heap boilerplate (Len/Less/Swap/Push/Pop
// methods plus per-element boxing) that otherwise gets duplicated at every
// priority-queue site — the simulator's event queue, branch-and-bound's
// node queue, and any future scheduler run queue.
//
// The ordering is supplied as a less function at construction; elements with
// a total order pop in exactly the same sequence as container/heap would,
// since any correct binary heap agrees on the minimum of a totally ordered
// set. Push and Pop do not box their elements, so value-type payloads stay
// allocation-free beyond the backing array's amortized growth.
package heapx

// Heap is a binary min-heap over T under the less function given to New.
// The zero value is not usable; construct with New.
type Heap[T any] struct {
	less func(a, b T) bool
	s    []T
}

// New returns an empty heap ordered by less (strict weak ordering; the
// minimum element under less pops first).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewWithCapacity is New with a pre-sized backing array.
func NewWithCapacity[T any](less func(a, b T) bool, n int) *Heap[T] {
	return &Heap[T]{less: less, s: make([]T, 0, n)}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.s) }

// Push adds x to the heap in O(log n).
func (h *Heap[T]) Push(x T) {
	h.s = append(h.s, x)
	h.up(len(h.s) - 1)
}

// Pop removes and returns the minimum element in O(log n). It panics on an
// empty heap; check Len first.
func (h *Heap[T]) Pop() T {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	it := h.s[n]
	var zero T
	h.s[n] = zero // release references held by pointer-bearing payloads
	h.s = h.s[:n]
	if n > 0 {
		h.down(0)
	}
	return it
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Peek() T { return h.s[0] }

// Clear empties the heap, keeping the backing array.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.s[r], h.s[l]) {
			m = r
		}
		if !h.less(h.s[m], h.s[i]) {
			return
		}
		h.s[i], h.s[m] = h.s[m], h.s[i]
		i = m
	}
}
