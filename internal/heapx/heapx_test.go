package heapx

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestPushPopSorted(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	var want []int
	for i := 0; i < 1000; i++ {
		v := rng.Intn(200)
		h.Push(v)
		want = append(want, v)
	}
	sort.Ints(want)
	for i, w := range want {
		if h.Len() != len(want)-i {
			t.Fatalf("len %d, want %d", h.Len(), len(want)-i)
		}
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d: got %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("non-empty after draining: %d", h.Len())
	}
}

func TestPeekAndClear(t *testing.T) {
	h := NewWithCapacity(func(a, b int) bool { return a < b }, 8)
	h.Push(3)
	h.Push(1)
	h.Push(2)
	if h.Peek() != 1 {
		t.Fatalf("peek %d, want 1", h.Peek())
	}
	if h.Pop() != 1 || h.Peek() != 2 {
		t.Fatal("pop/peek out of order")
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("clear did not empty the heap")
	}
	h.Push(9)
	if h.Pop() != 9 {
		t.Fatal("heap unusable after Clear")
	}
}

// refQueue is the classic container/heap boilerplate, kept here only as the
// equivalence oracle.
type refItem struct{ t, seq int }
type refQueue []refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(refItem)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TestMatchesContainerHeap interleaves random pushes and pops against
// container/heap under a total order (ties broken by sequence number): every
// pop must agree exactly, which is what lets the simulator's event queue swap
// implementations without changing trajectories.
func TestMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(func(a, b refItem) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		return a.seq < b.seq
	})
	ref := &refQueue{}
	heap.Init(ref)
	seq := 0
	for i := 0; i < 5000; i++ {
		if ref.Len() == 0 || rng.Intn(3) != 0 {
			it := refItem{t: rng.Intn(50), seq: seq}
			seq++
			h.Push(it)
			heap.Push(ref, it)
			continue
		}
		got := h.Pop()
		want := heap.Pop(ref).(refItem)
		if got != want {
			t.Fatalf("step %d: pop %+v, container/heap pops %+v", i, got, want)
		}
	}
	for ref.Len() > 0 {
		got, want := h.Pop(), heap.Pop(ref).(refItem)
		if got != want {
			t.Fatalf("drain: pop %+v, container/heap pops %+v", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("length mismatch after drain")
	}
}

func TestPointerPayloadReleased(t *testing.T) {
	h := New(func(a, b *refItem) bool { return a.t < b.t })
	h.Push(&refItem{t: 1})
	h.Push(&refItem{t: 2})
	_ = h.Pop()
	// The popped slot must be zeroed so the heap does not pin the element.
	if h.s[:cap(h.s)][1] != nil {
		t.Fatal("popped slot still references the element")
	}
}
