package workload

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
)

func baseScenario() Scenario {
	return Scenario{Hosts: 16, Services: 40, COV: 0.5, Slack: 0.4, Seed: 1}
}

func TestGenerateShapes(t *testing.T) {
	p := Generate(baseScenario())
	if p.NumNodes() != 16 || p.NumServices() != 40 {
		t.Fatalf("H,J = %d,%d", p.NumNodes(), p.NumServices())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(baseScenario())
	b := Generate(baseScenario())
	for h := range a.Nodes {
		if a.Nodes[h].Aggregate[CPU] != b.Nodes[h].Aggregate[CPU] {
			t.Fatal("same seed must reproduce the same platform")
		}
	}
	for j := range a.Services {
		if a.Services[j].NeedAgg[CPU] != b.Services[j].NeedAgg[CPU] {
			t.Fatal("same seed must reproduce the same services")
		}
	}
	c := Generate(Scenario{Hosts: 16, Services: 40, COV: 0.5, Slack: 0.4, Seed: 2})
	same := true
	for j := range a.Services {
		if a.Services[j].NeedAgg[CPU] != c.Services[j].NeedAgg[CPU] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestCapacityTruncation(t *testing.T) {
	scn := baseScenario()
	scn.COV = 1.0
	scn.Hosts = 500
	rng := rand.New(rand.NewSource(3))
	for _, n := range Platform(scn, rng) {
		cpu, mem := n.Aggregate[CPU], n.Aggregate[Mem]
		if cpu < CapacityMin || cpu > CapacityMax || mem < CapacityMin || mem > CapacityMax {
			t.Fatalf("capacity out of range: %v", n.Aggregate)
		}
		if math.Abs(n.Elementary[CPU]-cpu/4) > 1e-12 {
			t.Fatalf("not quad-core: %v vs %v", n.Elementary[CPU], cpu)
		}
		if n.Elementary[Mem] != mem {
			t.Fatal("memory should be arbitrarily divisible")
		}
	}
}

func TestHomogeneousPlatformAtZeroCOV(t *testing.T) {
	scn := baseScenario()
	scn.COV = 0
	p := Generate(scn)
	for _, n := range p.Nodes {
		if n.Aggregate[CPU] != CapacityMedian || n.Aggregate[Mem] != CapacityMedian {
			t.Fatalf("COV 0 should be fully homogeneous: %v", n.Aggregate)
		}
	}
}

func TestHeterogeneityModes(t *testing.T) {
	scn := baseScenario()
	scn.COV = 1.0

	scn.Mode = HeteroCPUHomogeneous
	p := Generate(scn)
	memVaries := false
	for _, n := range p.Nodes {
		if n.Aggregate[CPU] != CapacityMedian {
			t.Fatal("CPU should be pinned")
		}
		if n.Aggregate[Mem] != CapacityMedian {
			memVaries = true
		}
	}
	if !memVaries {
		t.Fatal("memory should vary")
	}

	scn.Mode = HeteroMemHomogeneous
	p = Generate(scn)
	cpuVaries := false
	for _, n := range p.Nodes {
		if n.Aggregate[Mem] != CapacityMedian {
			t.Fatal("memory should be pinned")
		}
		if n.Aggregate[CPU] != CapacityMedian {
			cpuVaries = true
		}
	}
	if !cpuVaries {
		t.Fatal("CPU should vary")
	}
}

func TestCPUNeedsNormalized(t *testing.T) {
	p := Generate(baseScenario())
	totalNeed := 0.0
	for j := range p.Services {
		totalNeed += p.Services[j].NeedAgg[CPU]
	}
	totalCap := p.TotalAggregate()[CPU]
	if math.Abs(totalNeed-totalCap) > 1e-9*totalCap {
		t.Fatalf("sum needs %v != sum capacity %v", totalNeed, totalCap)
	}
}

func TestMemorySlackScaling(t *testing.T) {
	for _, slack := range []float64{0.1, 0.5, 0.9} {
		scn := baseScenario()
		scn.Slack = slack
		p := Generate(scn)
		totalReq := 0.0
		for j := range p.Services {
			totalReq += p.Services[j].ReqAgg[Mem]
		}
		totalMem := p.TotalAggregate()[Mem]
		wantUsed := (1 - slack) * totalMem
		if math.Abs(totalReq-wantUsed) > 1e-9*totalMem {
			t.Fatalf("slack %v: memory requirements %v, want %v", slack, totalReq, wantUsed)
		}
	}
}

func TestElementaryCPUNeedIsPerCore(t *testing.T) {
	p := Generate(baseScenario())
	for j := range p.Services {
		s := &p.Services[j]
		// NeedAgg = cores * NeedElem by construction.
		ratio := s.NeedAgg[CPU] / s.NeedElem[CPU]
		rounded := math.Round(ratio)
		if math.Abs(ratio-rounded) > 1e-9 || rounded < 1 || rounded > 8 {
			t.Fatalf("service %d: agg/elem = %v, want integer core count in [1,8]", j, ratio)
		}
		if s.ReqElem[CPU] != DefaultGoogle().ElemCPURequirement {
			t.Fatalf("service %d: elementary CPU requirement should be the common reference", j)
		}
	}
}

func TestSampleCoresDistribution(t *testing.T) {
	g := DefaultGoogle()
	rng := rand.New(rand.NewSource(9))
	counts := map[int]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[g.sampleCores(rng)]++
	}
	for i, c := range g.CoreChoices {
		got := float64(counts[c]) / float64(n)
		want := g.CoreWeights[i]
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("core %d frequency %v, want ~%v", c, got, want)
		}
	}
}

func TestSampleMemBounds(t *testing.T) {
	g := DefaultGoogle()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5000; i++ {
		m := g.sampleMem(rng)
		if m < g.MemMin || m > g.MemMax {
			t.Fatalf("mem %v out of [%v,%v]", m, g.MemMin, g.MemMax)
		}
	}
}

func TestPerturbCPUNeeds(t *testing.T) {
	p := Generate(baseScenario())
	rng := rand.New(rand.NewSource(4))
	maxErr := 0.1
	est := PerturbCPUNeeds(p, maxErr, rng)
	changed := false
	for j := range p.Services {
		tr := p.Services[j].NeedAgg[CPU]
		e := est.Services[j].NeedAgg[CPU]
		if e != tr {
			changed = true
		}
		if e < 0.001-1e-12 {
			t.Fatalf("estimate below floor: %v", e)
		}
		if math.Abs(e-tr) > maxErr+1e-12 && e > 0.001+1e-12 {
			t.Fatalf("service %d: error %v exceeds max %v", j, math.Abs(e-tr), maxErr)
		}
		if est.Services[j].NeedElem[CPU] > est.Services[j].NeedAgg[CPU]+1e-12 {
			t.Fatalf("service %d: elementary estimate exceeds aggregate", j)
		}
	}
	if !changed {
		t.Fatal("perturbation changed nothing")
	}
	// True problem untouched.
	q := Generate(baseScenario())
	for j := range p.Services {
		if p.Services[j].NeedAgg[CPU] != q.Services[j].NeedAgg[CPU] {
			t.Fatal("PerturbCPUNeeds mutated its input")
		}
	}
}

func TestPerturbZeroErrorIsIdentityShaped(t *testing.T) {
	p := Generate(baseScenario())
	rng := rand.New(rand.NewSource(4))
	est := PerturbCPUNeeds(p, 0, rng)
	for j := range p.Services {
		if math.Abs(est.Services[j].NeedAgg[CPU]-p.Services[j].NeedAgg[CPU]) > 1e-12 {
			t.Fatal("zero max error must not change needs")
		}
	}
}

func TestMeanCPUNeed(t *testing.T) {
	p := Generate(baseScenario())
	m := MeanCPUNeed(p)
	// Total need equals total capacity (16 nodes, ~0.5 each with clamping),
	// so the mean per service is total/40.
	want := p.TotalAggregate()[CPU] / 40
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
	if MeanCPUNeed(&core.Problem{}) != 0 {
		t.Fatal("empty problem mean should be 0")
	}
}

// The paper reports mean CPU needs of 0.317/0.127/0.063 for 100/250/500
// services on 64 hosts: with needs normalized to total capacity the mean
// scales as H*0.5/J. Check our generator preserves that scaling shape.
func TestMeanNeedScalesInverselyWithServices(t *testing.T) {
	base := Scenario{Hosts: 64, COV: 0.5, Slack: 0.4, Seed: 7}
	var prev float64
	for i, j := range []int{100, 250, 500} {
		scn := base
		scn.Services = j
		m := MeanCPUNeed(Generate(scn))
		if i > 0 && m >= prev {
			t.Fatalf("mean need should decrease with service count: %v then %v", prev, m)
		}
		prev = m
	}
}
