// Package workload generates the synthetic problem instances of paper §4 and
// the erroneous-estimate variants of §6.2.
//
// Platforms: aggregate CPU and memory capacities are drawn from a normal
// distribution centered at 0.5 whose coefficient of variation is the
// experiment's heterogeneity knob, truncated to [0.001, 1.0]; every machine
// is quad-core, so elementary CPU capacity is a quarter of the aggregate,
// while memory is arbitrarily divisible (elementary = aggregate).
//
// Services: the paper instantiates requirements and needs from the Google
// cluster dataset, which it uses only through two marginals — the number of
// requested cores and the fraction of memory used. This package substitutes
// a distribution-shaped synthetic source (see Google type) with the same
// structure: aggregate CPU need proportional to the requested core count,
// elementary CPU requirement equal to one common reference value, CPU needs
// rescaled so that total CPU need equals total CPU capacity, and memory
// requirements rescaled to a target memory slack.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// Resource dimension indices used by all generated problems.
const (
	CPU = 0
	Mem = 1
	// Dims is the number of resource dimensions in generated problems.
	Dims = 2
)

// CapacityMedian is the center of the node capacity distribution.
const CapacityMedian = 0.5

// Capacity truncation limits (paper §4).
const (
	CapacityMin = 0.001
	CapacityMax = 1.0
)

// CoresPerNode reflects the paper's assumption that every machine is
// quad-core regardless of total power.
const CoresPerNode = 4

// HeterogeneityMode selects which capacity dimensions vary across nodes
// (Figures 2–4 hold one dimension homogeneous).
type HeterogeneityMode int

const (
	// HeteroBoth varies CPU and memory.
	HeteroBoth HeterogeneityMode = iota
	// HeteroCPUHomogeneous fixes CPU at the median and varies memory.
	HeteroCPUHomogeneous
	// HeteroMemHomogeneous fixes memory at the median and varies CPU.
	HeteroMemHomogeneous
)

// String names the mode.
func (m HeterogeneityMode) String() string {
	switch m {
	case HeteroBoth:
		return "both"
	case HeteroCPUHomogeneous:
		return "cpu-homogeneous"
	case HeteroMemHomogeneous:
		return "mem-homogeneous"
	default:
		return fmt.Sprintf("HeterogeneityMode(%d)", int(m))
	}
}

// Google is the synthetic stand-in for the Google cluster dataset marginals.
// CoreChoices and CoreWeights define the categorical distribution of the
// number of requested cores; memory fractions are log-normal with the given
// parameters, truncated to [MemMin, MemMax].
type Google struct {
	CoreChoices []int
	CoreWeights []float64
	MemLogMean  float64
	MemLogSigma float64
	MemMin      float64
	MemMax      float64
	// ElemCPURequirement is the common reference elementary CPU requirement
	// shared by all services.
	ElemCPURequirement float64
}

// DefaultGoogle returns the distribution used throughout the experiments: a
// heavy-tailed core-count distribution dominated by 1-core requests and a
// log-normal memory footprint with median ~5% of a reference machine.
func DefaultGoogle() *Google {
	return &Google{
		CoreChoices: []int{1, 2, 4, 8},
		CoreWeights: []float64{0.60, 0.23, 0.12, 0.05},
		MemLogMean:  math.Log(0.05),
		MemLogSigma: 1.0,
		MemMin:      0.001,
		MemMax:      0.5,
		// Small but nonzero: every service needs a sliver of a real core.
		ElemCPURequirement: 0.0005,
	}
}

// sampleCores draws a requested-core count.
func (g *Google) sampleCores(rng *rand.Rand) int {
	total := 0.0
	for _, w := range g.CoreWeights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range g.CoreWeights {
		r -= w
		if r < 0 {
			return g.CoreChoices[i]
		}
	}
	return g.CoreChoices[len(g.CoreChoices)-1]
}

// sampleMem draws a memory fraction.
func (g *Google) sampleMem(rng *rand.Rand) float64 {
	m := math.Exp(rng.NormFloat64()*g.MemLogSigma + g.MemLogMean)
	return clamp(m, g.MemMin, g.MemMax)
}

// Scenario identifies one experiment instance family member.
type Scenario struct {
	Hosts    int
	Services int
	// COV is the coefficient of variation of node capacities (0 =
	// homogeneous platform).
	COV float64
	// Slack is the target memory slack: the fraction of total memory left
	// free by a successful allocation; lower is harder (§4).
	Slack float64
	Mode  HeterogeneityMode
	Seed  int64
}

// String renders a compact scenario label.
func (s Scenario) String() string {
	return fmt.Sprintf("H%d/J%d/cov%.2f/slack%.1f/%s/seed%d",
		s.Hosts, s.Services, s.COV, s.Slack, s.Mode, s.Seed)
}

// truncNormal draws from N(mean, (cov*mean)^2) clamped to the capacity
// limits, matching the paper's "limited to minimum values of 0.001 and
// maximum values of 1.0".
func truncNormal(rng *rand.Rand, mean, cov float64) float64 {
	if cov <= 0 {
		return clamp(mean, CapacityMin, CapacityMax)
	}
	return clamp(rng.NormFloat64()*cov*mean+mean, CapacityMin, CapacityMax)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Platform generates the node set for a scenario.
func Platform(scn Scenario, rng *rand.Rand) []core.Node {
	nodes := make([]core.Node, scn.Hosts)
	for h := range nodes {
		cpu := CapacityMedian
		mem := CapacityMedian
		if scn.Mode != HeteroCPUHomogeneous {
			cpu = truncNormal(rng, CapacityMedian, scn.COV)
		}
		if scn.Mode != HeteroMemHomogeneous {
			mem = truncNormal(rng, CapacityMedian, scn.COV)
		}
		nodes[h] = core.Node{
			Name:       fmt.Sprintf("node-%d", h),
			Elementary: vec.Of(cpu/CoresPerNode, mem),
			Aggregate:  vec.Of(cpu, mem),
		}
	}
	return nodes
}

// Sampler provides the two service-size marginals the paper takes from the
// Google dataset, plus the common elementary CPU requirement. Google
// implements it with parametric distributions; trace-derived empirical
// samplers can implement it too.
type Sampler interface {
	// SampleCores draws a requested-core count.
	SampleCores(rng *rand.Rand) int
	// SampleMem draws a memory fraction.
	SampleMem(rng *rand.Rand) float64
	// ElemCPUReq returns the common elementary CPU requirement.
	ElemCPUReq() float64
}

// SampleCores implements Sampler.
func (g *Google) SampleCores(rng *rand.Rand) int { return g.sampleCores(rng) }

// SampleMem implements Sampler.
func (g *Google) SampleMem(rng *rand.Rand) float64 { return g.sampleMem(rng) }

// ElemCPUReq implements Sampler.
func (g *Google) ElemCPUReq() float64 { return g.ElemCPURequirement }

// Generate builds the full problem for a scenario using the default Google
// marginals.
func Generate(scn Scenario) *core.Problem {
	return GenerateWith(scn, DefaultGoogle())
}

// GenerateWith builds the problem for a scenario from explicit Google
// marginals. See GenerateSampled.
func GenerateWith(scn Scenario, g *Google) *core.Problem {
	return GenerateSampled(scn, g)
}

// GenerateSampled builds the problem for a scenario from any service-size
// sampler. CPU needs are scaled so total CPU need equals total CPU capacity;
// memory requirements are scaled so that a successful allocation leaves
// exactly scn.Slack of the total memory free.
func GenerateSampled(scn Scenario, g Sampler) *core.Problem {
	rng := rand.New(rand.NewSource(scn.Seed))
	p := &core.Problem{Nodes: Platform(scn, rng)}

	cores := make([]int, scn.Services)
	mems := make([]float64, scn.Services)
	sumCores, sumMem := 0.0, 0.0
	for j := 0; j < scn.Services; j++ {
		cores[j] = g.SampleCores(rng)
		mems[j] = g.SampleMem(rng)
		sumCores += float64(cores[j])
		sumMem += mems[j]
	}

	totals := vec.New(Dims)
	for _, n := range p.Nodes {
		totals.AccumAdd(n.Aggregate)
	}
	cpuScale := totals[CPU] / sumCores
	memScale := totals[Mem] * (1 - scn.Slack) / sumMem

	for j := 0; j < scn.Services; j++ {
		needCPU := float64(cores[j]) * cpuScale
		mem := mems[j] * memScale
		p.Services = append(p.Services, core.Service{
			Name:     fmt.Sprintf("svc-%d", j),
			ReqElem:  vec.Of(g.ElemCPUReq(), mem),
			ReqAgg:   vec.Of(g.ElemCPUReq(), mem),
			NeedElem: vec.Of(needCPU/float64(cores[j]), 0),
			NeedAgg:  vec.Of(needCPU, 0),
		})
	}
	return p
}

// PerturbCPUNeeds returns the *estimated* problem of §6.2: every service's
// aggregate CPU need is shifted by a uniform error in [-maxErr, +maxErr]
// (floored at 0.001), with elementary CPU needs scaled to keep their
// proportion to the aggregate. The input problem holds the true needs and is
// not modified.
func PerturbCPUNeeds(trueP *core.Problem, maxErr float64, rng *rand.Rand) *core.Problem {
	est := trueP.Clone()
	for j := range est.Services {
		s := &est.Services[j]
		old := s.NeedAgg[CPU]
		perturbed := old + (rng.Float64()*2-1)*maxErr
		if perturbed < 0.001 {
			perturbed = 0.001
		}
		s.NeedAgg[CPU] = perturbed
		if old > 0 {
			s.NeedElem[CPU] *= perturbed / old
		} else {
			s.NeedElem[CPU] = perturbed
		}
		if s.NeedElem[CPU] > s.NeedAgg[CPU] {
			s.NeedElem[CPU] = s.NeedAgg[CPU]
		}
	}
	return est
}

// MeanCPUNeed returns the average aggregate CPU need over services, the
// reference quantity the paper uses to express error magnitudes.
func MeanCPUNeed(p *core.Problem) float64 {
	if p.NumServices() == 0 {
		return 0
	}
	s := 0.0
	for j := range p.Services {
		s += p.Services[j].NeedAgg[CPU]
	}
	return s / float64(p.NumServices())
}
