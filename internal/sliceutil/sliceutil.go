// Package sliceutil holds the tiny generic slice helpers shared by the
// buffer-recycling hot paths (solver arenas, engine views).
package sliceutil

// Grow resizes s to n elements, reusing the backing array when its capacity
// suffices and reallocating with ×2 headroom otherwise, so steady-state
// reuse under churn is allocation-free and growth stays amortized O(1).
// Existing elements are preserved on reuse but NOT copied across a
// reallocation: callers rebuild content after growing.
func Grow[S ~[]E, E any](s S, n int) S {
	if cap(s) < n {
		return make(S, n, 2*n)
	}
	return s[:n]
}
