package sliceutil

import "testing"

func TestGrowReusesAndReallocates(t *testing.T) {
	s := make([]int, 0, 8)
	s = append(s, 1, 2, 3)
	g := Grow(s, 5)
	if len(g) != 5 || cap(g) != 8 {
		t.Fatalf("len=%d cap=%d, want 5/8", len(g), cap(g))
	}
	if g[0] != 1 || g[2] != 3 {
		t.Fatal("reuse dropped existing elements")
	}
	big := Grow(g, 20)
	if len(big) != 20 || cap(big) != 40 {
		t.Fatalf("len=%d cap=%d, want 20/40", len(big), cap(big))
	}
	if Grow([]string(nil), 0) == nil {
		// zero-length grow of nil may stay nil; both are fine as long as
		// len is 0 — just document the behavior here.
		t.Log("nil in, nil out")
	}
}

type named []float64

func TestGrowPreservesNamedTypes(t *testing.T) {
	var v named
	v = Grow(v, 4)
	if len(v) != 4 {
		t.Fatalf("len %d, want 4", len(v))
	}
	// The returned value must still be the named type (compile-time check).
	var _ named = Grow(v, 2)
}
