package presolve_test

import (
	"math"
	"testing"

	"vmalloc/internal/lp"
	"vmalloc/internal/milp"
	"vmalloc/internal/presolve"
	"vmalloc/internal/relax"
	"vmalloc/internal/workload"
)

// solveBoth solves p unreduced and through the presolving backend and
// returns both solutions.
func solveBoth(t *testing.T, p *lp.Problem) (raw, pre *lp.Solution) {
	t.Helper()
	raw, err := lp.SolveSparse(p)
	if err != nil {
		t.Fatalf("raw solve: %v", err)
	}
	pre, err = presolve.Backend{}.Solve(p)
	if err != nil {
		t.Fatalf("presolved solve: %v", err)
	}
	if raw.Status != pre.Status {
		t.Fatalf("status mismatch: raw %v, presolved %v", raw.Status, pre.Status)
	}
	return raw, pre
}

// checkEquivalent asserts objective agreement to 1e-9 (relative) and that
// the presolved primal is feasible for the original problem.
func checkEquivalent(t *testing.T, p *lp.Problem, raw, pre *lp.Solution) {
	t.Helper()
	if raw.Status != lp.Optimal {
		return
	}
	scale := 1 + math.Abs(raw.Objective)
	if d := math.Abs(raw.Objective - pre.Objective); d > 1e-9*scale {
		t.Fatalf("objective mismatch: raw %.15g, presolved %.15g (diff %g)", raw.Objective, pre.Objective, d)
	}
	checkFeasible(t, p, pre.X)
	// The reported objective must be the objective of the reported point.
	obj := 0.0
	for j, c := range p.Obj {
		obj += c * pre.X[j]
	}
	if d := math.Abs(obj - pre.Objective); d > 1e-9*scale {
		t.Fatalf("objective inconsistent with X: %.15g vs %.15g", obj, pre.Objective)
	}
}

func checkFeasible(t *testing.T, p *lp.Problem, x []float64) {
	t.Helper()
	if len(x) != p.NumVars() {
		t.Fatalf("solution has %d vars, want %d", len(x), p.NumVars())
	}
	const tol = 1e-6
	for j, v := range x {
		l, u := 0.0, math.Inf(1)
		if p.Lower != nil {
			l = p.Lower[j]
		}
		if p.Upper != nil {
			u = p.Upper[j]
		}
		if v < l-tol || v > u+tol {
			t.Fatalf("x[%d]=%g outside [%g,%g]", j, v, l, u)
		}
	}
	a := p.A
	if p.Cols != nil {
		a = p.Cols.Dense()
	}
	for i, row := range a {
		lhs := 0.0
		for j, c := range row {
			lhs += c * x[j]
		}
		scale := 1 + math.Abs(p.B[i])
		switch p.Sense[i] {
		case lp.LE:
			if lhs > p.B[i]+tol*scale {
				t.Fatalf("row %d violated: %g <= %g", i, lhs, p.B[i])
			}
		case lp.GE:
			if lhs < p.B[i]-tol*scale {
				t.Fatalf("row %d violated: %g >= %g", i, lhs, p.B[i])
			}
		case lp.EQ:
			if math.Abs(lhs-p.B[i]) > tol*scale {
				t.Fatalf("row %d violated: %g == %g", i, lhs, p.B[i])
			}
		}
	}
}

func inf() float64 { return math.Inf(1) }

// TestRuleFixedAndEmpty exercises fixed variables (equal bounds), empty
// columns, and empty rows in one model.
func TestRuleFixedAndEmpty(t *testing.T) {
	// max 2a + b + 3c: a free-ish in [0,4] unconstrained (empty col),
	// b fixed at 2, c in a real constraint; plus a vacuous 0 <= 5 row.
	p := &lp.Problem{
		Obj:   []float64{2, 1, 3},
		A:     [][]float64{{0, 1, 1}, {0, 0, 0}},
		Sense: []lp.Sense{lp.LE, lp.LE},
		B:     []float64{5, 5},
		Lower: []float64{0, 2, 0},
		Upper: []float64{4, 2, 10},
	}
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() != presolve.Solved {
		t.Fatalf("outcome %v, want Solved (everything removable)", red.Outcome())
	}
	full, err := red.Postsolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// a=4 (empty col at preferred bound), b=2 (fixed), c=3 (singleton row
	// bound b+c<=5 after b substituted).
	want := []float64{4, 2, 3}
	for j, w := range want {
		if math.Abs(full.X[j]-w) > 1e-9 {
			t.Fatalf("x[%d]=%g, want %g", j, full.X[j], w)
		}
	}
	raw, err := lp.SolveSparse(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Objective-raw.Objective) > 1e-9 {
		t.Fatalf("objective %g, want %g", full.Objective, raw.Objective)
	}
	if full.Basis == nil {
		t.Fatal("Solved outcome should reconstruct a basis")
	}
	warm, err := lp.SolveSparseWarm(p, full.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted || warm.Status != lp.Optimal {
		t.Fatalf("reconstructed basis rejected: warm=%v status=%v", warm.WarmStarted, warm.Status)
	}
}

// TestRuleSingletonRow checks singleton rows become bound tightenings in
// every sense/sign combination.
func TestRuleSingletonRow(t *testing.T) {
	p := &lp.Problem{
		Obj: []float64{1, 1, -1, 1},
		A: [][]float64{
			{2, 0, 0, 0},  // 2a <= 6  -> a <= 3
			{0, -1, 0, 0}, // -b <= -1 -> b >= 1
			{0, 0, 3, 0},  // 3c = 6   -> c = 2
			{0, 0, 0, 1},  // d >= 0.5
			{1, 1, 1, 1},  // keeps the model nontrivial
		},
		Sense: []lp.Sense{lp.LE, lp.LE, lp.EQ, lp.GE, lp.LE},
		B:     []float64{6, -1, 6, 0.5, 7},
		Upper: []float64{10, 10, 10, 10},
	}
	raw, pre := solveBoth(t, p)
	checkEquivalent(t, p, raw, pre)
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := red.Stats(); s.DroppedRows < 4 {
		t.Fatalf("expected >=4 dropped singleton rows, got stats %+v", s)
	}
}

// TestRuleRedundantAndForcing checks redundant rows are dropped and forcing
// rows fix their variables.
func TestRuleRedundantAndForcing(t *testing.T) {
	p := &lp.Problem{
		Obj: []float64{1, 2, 5},
		A: [][]float64{
			{1, 1, 0}, // a+b <= 100: redundant (max activity 2)
			{1, 1, 0}, // a+b >= 0: redundant (min activity 0)
			{0, 1, 1}, // b+c <= 0: forcing (min activity 0) -> b=c=0
		},
		Sense: []lp.Sense{lp.LE, lp.GE, lp.LE},
		B:     []float64{100, 0, 0},
		Upper: []float64{1, 1, 1},
	}
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() != presolve.Solved {
		t.Fatalf("outcome %v, want Solved", red.Outcome())
	}
	full, err := red.Postsolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 0}
	for j, w := range want {
		if math.Abs(full.X[j]-w) > 1e-12 {
			t.Fatalf("x[%d]=%g, want %g", j, full.X[j], w)
		}
	}
}

// TestRuleSubstitution checks equality substitution: a singleton column in
// an equality row (zero fill) and a general substitution whose host row
// survives as an inequality.
func TestRuleSubstitution(t *testing.T) {
	// max x + y + 10f subject to f + x + y = 1.5 (f in [0,10] appears only
	// here and is NOT implied free: f = 1.5-x-y in [-0.5, 1.5] exceeds
	// [0,10] below), x + 2y <= 2.
	p := &lp.Problem{
		Obj:   []float64{1, 1, 10},
		A:     [][]float64{{1, 1, 1}, {1, 2, 0}},
		Sense: []lp.Sense{lp.EQ, lp.LE},
		B:     []float64{1.5, 2},
		Upper: []float64{1, 1, 10},
	}
	raw, pre := solveBoth(t, p)
	checkEquivalent(t, p, raw, pre)
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := red.Stats(); s.SubstCols == 0 {
		t.Fatalf("expected a substitution, got stats %+v", s)
	}
}

// TestRuleBoundPropagation checks iterated propagation reaches a fixpoint
// across chained rows.
func TestRuleBoundPropagation(t *testing.T) {
	// x <= y/2 (via 2x - y <= 0 with y <= 1 -> x <= 0.5), then y <= z/2
	// similarly; propagation must chain z's bound through y into x.
	p := &lp.Problem{
		Obj:   []float64{1, 0, 0},
		A:     [][]float64{{2, -1, 0}, {0, 2, -1}},
		Sense: []lp.Sense{lp.LE, lp.LE},
		B:     []float64{0, 0},
		Upper: []float64{100, 100, 1},
	}
	raw, pre := solveBoth(t, p)
	checkEquivalent(t, p, raw, pre)
	if math.Abs(pre.Objective-0.25) > 1e-9 {
		t.Fatalf("objective %g, want 0.25", pre.Objective)
	}
}

// TestInfeasibleDetection checks presolve proves infeasibility without a
// simplex call.
func TestInfeasibleDetection(t *testing.T) {
	p := &lp.Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}},
		Sense: []lp.Sense{lp.GE},
		B:     []float64{5},
		Upper: []float64{1, 1},
	}
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() != presolve.Infeasible {
		t.Fatalf("outcome %v, want Infeasible", red.Outcome())
	}
	sol, err := presolve.Backend{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("status %v, want Infeasible", sol.Status)
	}
}

// TestUnboundedDetection checks an empty improving column with no upper
// bound is reported unbounded.
func TestUnboundedDetection(t *testing.T) {
	p := &lp.Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 0}},
		Sense: []lp.Sense{lp.LE},
		B:     []float64{1},
		Upper: []float64{1, inf()},
	}
	red, err := presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() != presolve.Unbounded {
		t.Fatalf("outcome %v, want Unbounded", red.Outcome())
	}
}

// TestIntegralFractionalFix checks a reduction that forces an integral
// variable to a fractional value prunes the node as infeasible.
func TestIntegralFractionalFix(t *testing.T) {
	p := &lp.Problem{
		Obj:   []float64{1},
		A:     [][]float64{{2}},
		Sense: []lp.Sense{lp.EQ},
		B:     []float64{1}, // x = 0.5
		Upper: []float64{1},
	}
	red, err := presolve.Reduce(p, &presolve.Options{Integral: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() != presolve.Infeasible {
		t.Fatalf("outcome %v, want Infeasible (fractional forced binary)", red.Outcome())
	}
	// Without the mark the same model is feasible.
	red, err = presolve.Reduce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if red.Outcome() == presolve.Infeasible {
		t.Fatal("continuous relaxation wrongly infeasible")
	}
}

// parkScenarios returns 100+ varied park instances: the S4 equivalence
// corpus.
func parkScenarios() []workload.Scenario {
	var scns []workload.Scenario
	for _, hosts := range []int{2, 3, 5} {
		for _, services := range []int{4, 8, 16} {
			for _, cov := range []float64{0, 0.5, 1.0} {
				for _, slack := range []float64{0.3, 0.7} {
					for seed := int64(1); seed <= 2; seed++ {
						scns = append(scns, workload.Scenario{
							Hosts: hosts, Services: services,
							COV: cov, Slack: slack, Seed: seed,
						})
					}
				}
			}
		}
	}
	return scns // 3*3*3*2*2 = 108 instances
}

// TestEquivalenceRandomParks is the headline equivalence gate: across 100+
// random park relaxations the reduced-model objective and reconstructed
// primal must match the unreduced solve to 1e-9, and the reconstructed
// full-space basis must warm-start the unreduced model.
func TestEquivalenceRandomParks(t *testing.T) {
	scns := parkScenarios()
	if len(scns) < 100 {
		t.Fatalf("corpus too small: %d instances", len(scns))
	}
	basisOK := 0
	for _, scn := range scns {
		p := workload.Generate(scn)
		enc := relax.Encode(p)
		raw, pre := solveBoth(t, enc.LP)
		checkEquivalent(t, enc.LP, raw, pre)
		if raw.Status != lp.Optimal {
			continue
		}

		// Full-space basis reconstruction through the explicit API.
		red, err := presolve.Reduce(enc.LP, nil)
		if err != nil {
			t.Fatalf("%v: %v", scn, err)
		}
		if red.Outcome() != presolve.Reduced {
			t.Fatalf("%v: outcome %v", scn, red.Outcome())
		}
		if s := red.Stats(); s.RowsAfter >= s.RowsBefore && s.ColsAfter >= s.ColsBefore {
			t.Errorf("%v: presolve removed nothing: %+v", scn, s)
		}
		rsol, err := lp.SolveSparse(red.Problem())
		if err != nil {
			t.Fatalf("%v: reduced solve: %v", scn, err)
		}
		full, err := red.Postsolve(rsol)
		if err != nil {
			t.Fatalf("%v: postsolve: %v", scn, err)
		}
		scale := 1 + math.Abs(raw.Objective)
		if d := math.Abs(full.Objective - raw.Objective); d > 1e-9*scale {
			t.Fatalf("%v: postsolved objective %.15g vs raw %.15g", scn, full.Objective, raw.Objective)
		}
		if full.Basis != nil {
			warm, err := lp.SolveSparseWarm(enc.LP, full.Basis)
			if err != nil {
				t.Fatalf("%v: warm from reconstructed basis: %v", scn, err)
			}
			if warm.Status != lp.Optimal {
				t.Fatalf("%v: warm status %v", scn, warm.Status)
			}
			if d := math.Abs(warm.Objective - raw.Objective); d > 1e-9*scale {
				t.Fatalf("%v: warm objective drifted: %.15g vs %.15g", scn, warm.Objective, raw.Objective)
			}
			if warm.WarmStarted {
				basisOK++
			}
		}
	}
	// The reconstruction must be usable in the common case, not just a
	// permanent cold-start fallback.
	if basisOK < len(scns)/2 {
		t.Fatalf("reconstructed full basis installed on only %d/%d instances", basisOK, len(scns))
	}
	t.Logf("full-space basis installed warm on %d/%d instances", basisOK, len(scns))
}

// TestEquivalenceUnderMILP proves branch and bound with per-node presolve
// (and warm starts) matches the non-presolved search exactly.
func TestEquivalenceUnderMILP(t *testing.T) {
	count := 0
	for _, hosts := range []int{2, 3} {
		for _, services := range []int{4, 6} {
			for seed := int64(1); seed <= 3; seed++ {
				scn := workload.Scenario{Hosts: hosts, Services: services, COV: 0.5, Slack: 0.5, Seed: seed}
				p := workload.Generate(scn)
				enc := relax.Encode(p)
				var bins []int
				for j := 0; j < enc.J; j++ {
					for h := 0; h < enc.H; h++ {
						bins = append(bins, enc.EVar(j, h))
					}
				}
				mp := &milp.Problem{LP: *enc.LP, Binary: bins}
				plain, err := milp.Solve(mp, &milp.Options{DisablePresolve: true})
				if err != nil {
					t.Fatalf("%v plain: %v", scn, err)
				}
				pre, err := milp.Solve(mp, nil)
				if err != nil {
					t.Fatalf("%v presolved: %v", scn, err)
				}
				if plain.Status != pre.Status || plain.HasIncumbent != pre.HasIncumbent {
					t.Fatalf("%v: status %v/%v vs %v/%v", scn,
						plain.Status, plain.HasIncumbent, pre.Status, pre.HasIncumbent)
				}
				if plain.HasIncumbent {
					if d := math.Abs(plain.Objective - pre.Objective); d > 1e-9*(1+math.Abs(plain.Objective)) {
						t.Fatalf("%v: MILP objective %.15g vs %.15g", scn, plain.Objective, pre.Objective)
					}
				}
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("no MILP instances exercised")
	}
}

// TestWarmTokenRoundTrip checks the backend's reduced-space warm token
// installs when re-solving the identical problem (the RRND->RRNZ roster
// pattern).
func TestWarmTokenRoundTrip(t *testing.T) {
	p := workload.Generate(workload.Scenario{Hosts: 4, Services: 16, COV: 0.5, Slack: 0.5, Seed: 7})
	enc := relax.Encode(p)
	b := presolve.Backend{}
	cold, err := b.Solve(enc.LP)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != lp.Optimal || cold.Basis == nil {
		t.Fatalf("cold solve: status %v basis %v", cold.Status, cold.Basis != nil)
	}
	warm, err := b.SolveWarm(enc.LP, cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("identical re-solve did not install the reduced warm token")
	}
	if warm.Iters > cold.Iters/2 {
		t.Fatalf("warm re-solve barely cheaper: %d iters vs cold %d", warm.Iters, cold.Iters)
	}
	if d := math.Abs(warm.Objective - cold.Objective); d > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("warm objective drifted: %.15g vs %.15g", warm.Objective, cold.Objective)
	}
}

// TestBackendRegistered checks the presolving backend self-registers in the
// lp registry.
func TestBackendRegistered(t *testing.T) {
	if _, ok := lp.Lookup("presolve+simplex"); !ok {
		t.Fatalf("presolve+simplex not registered; have %v", lp.Backends())
	}
	if _, ok := lp.Lookup("simplex"); !ok {
		t.Fatalf("simplex not registered; have %v", lp.Backends())
	}
}
