// Backend wraps any lp.Backend with the reduction pipeline, making
// presolve+solve+postsolve a drop-in solver for relax, hvp's LPBOUND
// bracket, and exp.LPRoster. The warm-basis token it hands out is the
// REDUCED model's basis: re-solving the identical problem reduces
// identically, so the token installs directly on the next reduced solve —
// which is exactly the RRND-then-RRNZ roster pattern. A token from a
// differently-shaped problem fails the install shape check inside the inner
// solver and costs only a cold start. Use Reduce/Postsolve directly when
// the full-space basis is needed instead.

package presolve

import "vmalloc/internal/lp"

// Backend is a presolving lp.Backend. The zero value wraps the in-tree
// sparse simplex.
type Backend struct {
	// Inner solves the reduced models; nil means lp.Simplex.
	Inner lp.Backend
	// Opts configures every reduction (nil = defaults).
	Opts *Options
}

func init() {
	lp.MustRegister(Backend{})
}

func (b Backend) inner() lp.Backend {
	if b.Inner == nil {
		return lp.Simplex{}
	}
	return b.Inner
}

// Name implements lp.Backend.
func (b Backend) Name() string { return "presolve+" + b.inner().Name() }

// Solve implements lp.Backend.
func (b Backend) Solve(p *lp.Problem) (*lp.Solution, error) { return b.SolveWarm(p, nil) }

// SolveWarm implements lp.Backend: reduce, solve the reduced model (warm
// when the token fits), postsolve the primal, and return the reduced basis
// as the next warm token.
func (b Backend) SolveWarm(p *lp.Problem, warm *lp.Basis) (*lp.Solution, error) {
	red, err := Reduce(p, b.Opts)
	if err != nil {
		return nil, err
	}
	switch red.Outcome() {
	case Infeasible:
		return &lp.Solution{Status: lp.Infeasible, Presolve: red.solutionStats()}, nil
	case Unbounded:
		return &lp.Solution{Status: lp.Unbounded, Presolve: red.solutionStats()}, nil
	case Solved:
		full, err := red.Postsolve(nil)
		if err != nil {
			return nil, err
		}
		full.Presolve = red.solutionStats()
		return full, nil
	}
	sol, err := b.inner().SolveWarm(red.Problem(), warm)
	if err != nil {
		return sol, err
	}
	full, err := red.Postsolve(sol)
	if err != nil {
		return nil, err
	}
	// Hand the reduced basis back as the warm token; the full-space basis
	// reconstruction is reachable via explicit Reduce+Postsolve.
	full.Basis = sol.Basis
	full.Refactorizations = sol.Refactorizations
	full.BlandActivations = sol.BlandActivations
	full.Presolve = red.solutionStats()
	return full, nil
}

// solutionStats converts the reduction's counters into the lp-space stats
// attached to the returned Solution.
func (r *Reduction) solutionStats() *lp.PresolveStats {
	st := r.Stats()
	return &lp.PresolveStats{
		RowsEliminated:  st.RowsBefore - st.RowsAfter,
		ColsEliminated:  st.ColsBefore - st.ColsAfter,
		FixedCols:       st.FixedCols,
		DroppedRows:     st.DroppedRows,
		SubstCols:       st.SubstCols,
		BoundsTightened: st.BoundsTightened,
		DoubletonSlacks: st.DoubletonSlacks,
	}
}
