// Package presolve shrinks linear programs before the simplex ever runs: a
// reduction pipeline over the CSC form removes fixed variables, empty rows
// and columns, turns singleton rows into bound tightenings, substitutes
// columns out through equality rows (singleton columns are the zero-fill
// case), drops redundant rows, fixes whole rows when their activity bounds
// force every variable, and iterates bound propagation to a fixpoint. The
// reduced model is solved by any lp.Backend; a postsolve stack then
// reconstructs the full primal solution and a full-space simplex basis.
//
// The paper's relaxation (Eqs. 1–7) is the design target: its per-service
// placement equalities (Eq. 3) and min-yield linking rows (Eq. 7) are what
// force the two-phase simplex into a long artificial-elimination phase 1.
// Equality substitution of Eq. 3 plus the >=-to-<= normalization performed
// at emit leave a reduced model whose initial slack basis is feasible, so
// warm-started re-solves (RRND/RRNZ rosters, branch-and-bound children)
// skip phase 1 entirely. In branch and bound the bound fixings applied by
// internal/milp cascade: a branched e_jh = 1 forces the sibling placements
// to 0, which empties the linked y-rows, which fixes their columns, so
// child nodes presolve smaller every level down the tree.
package presolve

import (
	"fmt"
	"math"
	"sort"

	"vmalloc/internal/lp"
)

// Options tunes a reduction.
type Options struct {
	// Integral marks variables that must take integer values in the
	// surrounding MILP (len = NumVars, or nil for a pure LP). Presolve
	// rounds their bounds inward and detects fractional forced values as
	// infeasibility, which is what lets branch-and-bound nodes die in
	// presolve instead of in the simplex.
	Integral []bool
	// MaxPasses caps the outer reduce-to-fixpoint loop (0 = default 10).
	MaxPasses int
	// DisableSubst turns off equality substitution (singleton-column and
	// general fill-capped), leaving only the row/bound reductions. Used by
	// tests to isolate rules; production callers keep it on.
	DisableSubst bool
}

// Outcome classifies a reduction.
type Outcome int

const (
	// Reduced means a nonempty model remains: solve Problem(), then pass
	// the solution to Postsolve.
	Reduced Outcome = iota
	// Solved means presolve eliminated everything; Postsolve(nil) yields
	// the full solution directly.
	Solved
	// Infeasible means presolve proved no feasible point exists.
	Infeasible
	// Unbounded means presolve proved the objective unbounded above.
	Unbounded
)

// String returns a human-readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Reduced:
		return "reduced"
	case Solved:
		return "solved"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats counts what the pipeline removed.
type Stats struct {
	RowsBefore, RowsAfter int
	ColsBefore, ColsAfter int
	NNZBefore, NNZAfter   int
	FixedCols             int // variables fixed (equal bounds, empty, forced)
	DroppedRows           int // empty + singleton + redundant + forcing rows
	SubstCols             int // columns substituted out through equality rows
	BoundsTightened       int // bound updates from singletons + propagation
	DoubletonSlacks       int // inequality doubletons eliminated via an explicit slack column
}

// Reduction is the result of Reduce: the reduced problem plus everything
// Postsolve needs to translate a reduced solution back to the original
// variable and row space.
type Reduction struct {
	outcome Outcome
	stats   Stats

	orig      *lp.Problem
	origCols  *lp.CSC // pristine sparse view of orig's constraint matrix
	n0, m0    int
	origSense []lp.Sense
	origL     []float64 // resolved original bounds (nil fields expanded)
	origU     []float64

	reduced *lp.Problem
	colKeep []int // reduced col -> reducer col (>= n0: synthetic doubleton slack)
	colMap  []int // reducer col -> reduced col, or -1
	rowKeep []int // reduced row -> original row
	rowMap  []int // original row -> reduced row, or -1

	// synRow[k] is the original inequality row whose slack became synthetic
	// column n0+k during doubleton elimination. In the full model that
	// column IS the row's slack, which is how postsolve maps it back.
	synRow []int

	// pivotOf[i] is the column substituted out through original EQ row i
	// (-1 otherwise). When the row survives (morphed to an inequality) its
	// reduced slack stands in for the pivot column; when it was dropped the
	// pivot column is basic in the full row.
	pivotOf []int

	records []record
}

// record is one postsolve step, undone in reverse application order.
type record struct {
	kind  recKind
	col   int
	val   float64 // recFix: the fixed value
	row   int     // recSubst: the host equality row
	a, b  float64 // recSubst: pivot coefficient and row rhs at subst time
	terms []entry // recSubst: the row's other coefficients at subst time
}

type recKind int8

const (
	recFix recKind = iota
	recSubst
)

// entry is one matrix coefficient, indexed by original column id.
type entry struct {
	j int
	v float64
}

// Outcome reports how the reduction ended.
func (r *Reduction) Outcome() Outcome { return r.outcome }

// Stats reports what was removed.
func (r *Reduction) Stats() Stats { return r.stats }

// Problem returns the reduced model (valid only when Outcome() == Reduced).
// Its objective omits the constant contributed by eliminated variables;
// Postsolve recomputes the true objective from the original coefficients.
func (r *Reduction) Problem() *lp.Problem { return r.reduced }

// presolve tolerances. Reductions must never perturb the optimum beyond
// what the equivalence tests allow (1e-9 on the objective), so anything
// that cuts the feasible region (forcing, redundancy) uses tolerances well
// inside the solver's own feasTol while bound propagation — which only ever
// removes provably infeasible points — applies a looser improvement
// threshold purely to reach its fixpoint quickly.
const (
	feasTol     = 1e-7  // infeasibility detection, matching the solvers
	redTol      = 1e-9  // redundant-row slack margin
	forceTol    = 1e-12 // forcing-row activity margin
	propEps     = 1e-7  // minimum bound improvement worth recording
	dropCoefTol = 1e-12 // coefficients this small after cancellation vanish
	intRound    = 1e-9  // integrality rounding margin
)

// substitution limits: a pivot may appear in at most maxPivotRows other
// rows and the merge may create at most maxSubstFill new nonzeros, so
// substitution can never densify the model faster than it shrinks it.
const (
	maxPivotRows = 8
	maxSubstFill = 100
)

// reducer is the mutable working state of one reduction, always indexed by
// original row/column ids.
type reducer struct {
	n, m     int       // current counts; n grows past nOrig as slacks are added
	nOrig    int       // columns in the input problem
	synRow   []int     // synthetic column n0+k -> its source inequality row
	rows     [][]entry // per-row coefficients, sorted by column
	sense    []lp.Sense
	b        []float64
	rowAlive []bool
	colAlive []bool
	l, u, c  []float64
	integral []bool
	colRows  [][]int // rows that may contain the column (lazily deduped)
	pivotOf  []int
	records  []record
	stats    Stats
	opts     Options

	// assumeImplied makes the next substitute call skip its implied-bound
	// derivation: vubPass has already proven both sides, and the check costs
	// a row-activity scan per row containing the pivot.
	assumeImplied bool

	// ceScratch backs colEntries' result so the hottest presolve query does
	// not allocate; see the ownership note on colEntries.
	ceScratch []colEntry

	infeasible bool
	unbounded  bool
}

// Reduce runs the pipeline on a validated problem (either matrix form; the
// dense form is sparsified first) and returns the reduction.
func Reduce(p *lp.Problem, opts *Options) (*Reduction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	if opts.Integral != nil && len(opts.Integral) != p.NumVars() {
		return nil, fmt.Errorf("presolve: |Integral|=%d, want %d", len(opts.Integral), p.NumVars())
	}
	sp := p.Sparsify()
	ps := newReducer(sp, *opts)
	ps.run()

	r := &Reduction{
		orig:      p,
		origCols:  sp.Cols,
		n0:        ps.nOrig,
		m0:        ps.m,
		origSense: append([]lp.Sense(nil), p.Sense...),
		origL:     make([]float64, ps.nOrig),
		origU:     make([]float64, ps.nOrig),
		pivotOf:   ps.pivotOf,
		records:   ps.records,
		stats:     ps.stats,
		synRow:    ps.synRow,
	}
	for j := 0; j < ps.nOrig; j++ {
		if p.Lower != nil {
			r.origL[j] = p.Lower[j]
		}
		r.origU[j] = math.Inf(1)
		if p.Upper != nil {
			r.origU[j] = p.Upper[j]
		}
	}

	switch {
	case ps.infeasible:
		r.outcome = Infeasible
		return r, nil
	case ps.unbounded:
		r.outcome = Unbounded
		return r, nil
	}

	// With no constraint rows left the remainder is a box LP: every column
	// moves to its objective-preferred bound (or proves unboundedness).
	if ps.aliveRows() == 0 {
		for j := 0; j < ps.n; j++ {
			if !ps.colAlive[j] {
				continue
			}
			if ps.c[j] > 0 {
				if math.IsInf(ps.u[j], 1) {
					r.outcome = Unbounded
					return r, nil
				}
				ps.fixCol(j, ps.u[j])
			} else {
				ps.fixCol(j, ps.l[j])
			}
		}
	}
	r.records = ps.records
	r.stats = ps.stats

	if ps.aliveCols() == 0 {
		// Rows may remain alive only if every one is satisfied by the
		// constants; the empty-row rule already verified that (or flagged
		// infeasibility) for rows it saw, so sweep any stragglers.
		for i := 0; i < ps.m; i++ {
			if ps.rowAlive[i] {
				ps.checkEmptyRow(i)
			}
		}
		if ps.infeasible {
			r.outcome = Infeasible
			return r, nil
		}
		r.outcome = Solved
		r.colMap = fullMap(ps.n, nil)
		r.rowMap = fullMap(ps.m, nil)
		r.stats = ps.stats
		return r, nil
	}

	r.outcome = Reduced
	r.reduced, r.colKeep, r.rowKeep, r.colMap, r.rowMap = ps.emit(p.MaxIter)
	r.stats = ps.stats
	r.stats.RowsAfter = len(r.rowKeep)
	r.stats.ColsAfter = len(r.colKeep)
	r.stats.NNZAfter = r.reduced.Cols.NNZ()
	return r, nil
}

// fullMap returns a map slice sending every index to -1 except those listed
// in keep, which get their position.
func fullMap(n int, keep []int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = -1
	}
	for pos, id := range keep {
		m[id] = pos
	}
	return m
}

func newReducer(p *lp.Problem, opts Options) *reducer {
	n, m := p.NumVars(), p.NumRows()
	ps := &reducer{
		n: n, m: m, nOrig: n,
		rows:     make([][]entry, m),
		sense:    append([]lp.Sense(nil), p.Sense...),
		b:        append([]float64(nil), p.B...),
		rowAlive: make([]bool, m),
		colAlive: make([]bool, n),
		l:        make([]float64, n),
		u:        make([]float64, n),
		c:        append([]float64(nil), p.Obj...),
		integral: opts.Integral,
		colRows:  make([][]int, n),
		pivotOf:  make([]int, m),
		opts:     opts,
	}
	for i := range ps.rowAlive {
		ps.rowAlive[i] = true
		ps.pivotOf[i] = -1
	}
	for j := 0; j < n; j++ {
		ps.colAlive[j] = true
		ps.l[j] = 0
		if p.Lower != nil {
			ps.l[j] = p.Lower[j]
		}
		ps.u[j] = math.Inf(1)
		if p.Upper != nil {
			ps.u[j] = p.Upper[j]
		}
	}
	csc := p.Cols
	for j := 0; j < n; j++ {
		for k := csc.ColPtr[j]; k < csc.ColPtr[j+1]; k++ {
			i := csc.RowIdx[k]
			ps.rows[i] = append(ps.rows[i], entry{j, csc.Val[k]})
			ps.colRows[j] = append(ps.colRows[j], i)
		}
	}
	for i := range ps.rows {
		row := ps.rows[i]
		sort.Slice(row, func(a, b int) bool { return row[a].j < row[b].j })
		ps.stats.NNZBefore += len(row)
	}
	ps.stats.RowsBefore = m
	ps.stats.ColsBefore = n
	return ps
}

func (ps *reducer) aliveRows() int {
	c := 0
	for _, a := range ps.rowAlive {
		if a {
			c++
		}
	}
	return c
}

func (ps *reducer) aliveCols() int {
	c := 0
	for _, a := range ps.colAlive {
		if a {
			c++
		}
	}
	return c
}

// run iterates every rule to a fixpoint (or the pass cap).
func (ps *reducer) run() {
	// Integral bounds round inward once up front; later tightenings
	// re-round as they land.
	for j := 0; j < ps.n; j++ {
		ps.roundIntegral(j)
		if ps.infeasible {
			return
		}
	}
	maxPasses := ps.opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := ps.fixPass()
		changed = ps.rowPass() || changed
		if !ps.opts.DisableSubst {
			changed = ps.vubPass() || changed
			changed = ps.substPass() || changed
		}
		if ps.infeasible || ps.unbounded || !changed {
			return
		}
	}
}

// fixPass fixes columns whose bounds have collapsed and columns that appear
// in no alive row (set to their objective-preferred bound).
func (ps *reducer) fixPass() bool {
	changed := false
	for j := 0; j < ps.n; j++ {
		if !ps.colAlive[j] {
			continue
		}
		if ps.l[j] > ps.u[j]+feasTol {
			ps.infeasible = true
			return changed
		}
		if ps.u[j] <= ps.l[j] {
			v := ps.l[j]
			if ps.u[j] < v {
				v = (ps.l[j] + ps.u[j]) / 2 // tolerance overlap: split it
			}
			ps.fixCol(j, v)
			changed = true
			continue
		}
		if len(ps.colEntries(j)) == 0 {
			// Empty column: only the objective cares about it.
			if ps.c[j] > 0 {
				if math.IsInf(ps.u[j], 1) {
					ps.unbounded = true
					return changed
				}
				ps.fixCol(j, ps.u[j])
			} else {
				ps.fixCol(j, ps.l[j])
			}
			changed = true
		}
	}
	return changed
}

// rowPass applies the row rules: empty rows, singleton rows, infeasibility
// and redundancy from activity bounds, forcing rows, and bound propagation.
func (ps *reducer) rowPass() bool {
	changed := false
	for i := 0; i < ps.m; i++ {
		if !ps.rowAlive[i] {
			continue
		}
		row := ps.rows[i]
		switch len(row) {
		case 0:
			ps.checkEmptyRow(i)
			changed = true
			continue
		case 1:
			ps.singletonRow(i, row[0])
			changed = true
			continue
		}
		if ps.infeasible {
			return changed
		}

		minAct, maxAct := ps.activity(row)
		b, scale := ps.b[i], 1+math.Abs(ps.b[i])
		switch ps.sense[i] {
		case lp.LE:
			if minAct > b+feasTol*scale {
				ps.infeasible = true
				return changed
			}
			if maxAct <= b+redTol*scale {
				ps.dropRow(i)
				changed = true
				continue
			}
			if minAct >= b-forceTol*scale && !math.IsInf(minAct, 0) {
				ps.forceRow(i, row, true)
				changed = true
				continue
			}
		case lp.GE:
			if maxAct < b-feasTol*scale {
				ps.infeasible = true
				return changed
			}
			if minAct >= b-redTol*scale {
				ps.dropRow(i)
				changed = true
				continue
			}
			if maxAct <= b+forceTol*scale && !math.IsInf(maxAct, 0) {
				ps.forceRow(i, row, false)
				changed = true
				continue
			}
		case lp.EQ:
			if minAct > b+feasTol*scale || maxAct < b-feasTol*scale {
				ps.infeasible = true
				return changed
			}
			if minAct >= b-redTol*scale && maxAct <= b+redTol*scale {
				ps.dropRow(i)
				changed = true
				continue
			}
			if minAct >= b-forceTol*scale && !math.IsInf(minAct, 0) {
				ps.forceRow(i, row, true)
				changed = true
				continue
			}
			if maxAct <= b+forceTol*scale && !math.IsInf(maxAct, 0) {
				ps.forceRow(i, row, false)
				changed = true
				continue
			}
		}
		changed = ps.propagate(i, row, minAct, maxAct) || changed
		if ps.infeasible {
			return changed
		}
	}
	return changed
}

// checkEmptyRow verifies 0 {sense} b and drops the row (or flags
// infeasibility).
func (ps *reducer) checkEmptyRow(i int) {
	b, scale := ps.b[i], 1+math.Abs(ps.b[i])
	bad := false
	switch ps.sense[i] {
	case lp.LE:
		bad = b < -feasTol*scale
	case lp.GE:
		bad = b > feasTol*scale
	case lp.EQ:
		bad = math.Abs(b) > feasTol*scale
	}
	if bad {
		ps.infeasible = true
		return
	}
	ps.dropRow(i)
}

// singletonRow turns a one-entry row into a bound on its variable and drops
// the row.
func (ps *reducer) singletonRow(i int, e entry) {
	if math.Abs(e.v) < dropCoefTol {
		ps.removeEntry(i, e.j)
		ps.checkEmptyRow(i)
		return
	}
	v := ps.b[i] / e.v
	switch {
	case ps.sense[i] == lp.EQ:
		if v < ps.l[e.j]-feasTol || v > ps.u[e.j]+feasTol {
			ps.infeasible = true
			return
		}
		ps.tighten(e.j, v, v)
	case (ps.sense[i] == lp.LE) == (e.v > 0):
		// a·x <= b with a>0, or a·x >= b with a<0: upper bound.
		ps.tighten(e.j, math.Inf(-1), v)
	default:
		ps.tighten(e.j, v, math.Inf(1))
	}
	if !ps.infeasible {
		ps.dropRow(i)
	}
}

// forceRow fires when a row's activity bound meets its rhs exactly: every
// variable is fixed at the bound that produced the extreme activity.
// minSide selects the minimum-activity bounds (a>0 -> lower, a<0 -> upper);
// otherwise the maximum-activity ones.
func (ps *reducer) forceRow(i int, row []entry, minSide bool) {
	fixes := append([]entry(nil), row...)
	ps.dropRow(i)
	for _, e := range fixes {
		if !ps.colAlive[e.j] {
			continue
		}
		atLower := (e.v > 0) == minSide
		if atLower {
			ps.fixCol(e.j, ps.l[e.j])
		} else {
			ps.fixCol(e.j, ps.u[e.j])
		}
	}
}

// activity returns the minimum and maximum of the row's left-hand side over
// the current bounds (±Inf when an unbounded variable contributes).
func (ps *reducer) activity(row []entry) (minAct, maxAct float64) {
	for _, e := range row {
		if e.v > 0 {
			minAct += e.v * ps.l[e.j]
			maxAct += e.v * ps.u[e.j] // Inf stays Inf
		} else {
			minAct += e.v * ps.u[e.j]
			maxAct += e.v * ps.l[e.j]
		}
	}
	return minAct, maxAct
}

// propagate derives implied bounds for each variable from the row's
// residual activity and tightens when the improvement is material. The
// derived bounds hold for every feasible point, so propagation can never
// cut the optimum.
func (ps *reducer) propagate(i int, row []entry, minAct, maxAct float64) bool {
	changed := false
	b := ps.b[i]
	le := ps.sense[i] == lp.LE || ps.sense[i] == lp.EQ
	ge := ps.sense[i] == lp.GE || ps.sense[i] == lp.EQ
	for _, e := range row {
		if math.Abs(e.v) < dropCoefTol {
			continue
		}
		// Residual activity with e.j's own contribution removed.
		var restMin, restMax float64
		if e.v > 0 {
			restMin, restMax = minAct-e.v*ps.l[e.j], maxAct-e.v*ps.u[e.j]
		} else {
			restMin, restMax = minAct-e.v*ps.u[e.j], maxAct-e.v*ps.l[e.j]
		}
		if le && !math.IsInf(restMin, 0) && !math.IsNaN(restMin) {
			// a_j x_j <= b - restMin
			bound := (b - restMin) / e.v
			if e.v > 0 {
				if bound < ps.u[e.j]-propEps*(1+math.Abs(bound)) {
					ps.tighten(e.j, math.Inf(-1), bound)
					changed = true
				}
			} else if bound > ps.l[e.j]+propEps*(1+math.Abs(bound)) {
				ps.tighten(e.j, bound, math.Inf(1))
				changed = true
			}
		}
		if ge && !math.IsInf(restMax, 0) && !math.IsNaN(restMax) {
			// a_j x_j >= b - restMax
			bound := (b - restMax) / e.v
			if e.v > 0 {
				if bound > ps.l[e.j]+propEps*(1+math.Abs(bound)) {
					ps.tighten(e.j, bound, math.Inf(1))
					changed = true
				}
			} else if bound < ps.u[e.j]-propEps*(1+math.Abs(bound)) {
				ps.tighten(e.j, math.Inf(-1), bound)
				changed = true
			}
		}
		if ps.infeasible {
			return changed
		}
	}
	return changed
}

// tighten intersects [lo,hi] into column j's bounds, rounding integral
// columns inward.
func (ps *reducer) tighten(j int, lo, hi float64) {
	if lo > ps.l[j] {
		ps.l[j] = lo
		ps.stats.BoundsTightened++
	}
	if hi < ps.u[j] {
		ps.u[j] = hi
		ps.stats.BoundsTightened++
	}
	ps.roundIntegral(j)
	if ps.l[j] > ps.u[j]+feasTol {
		ps.infeasible = true
	}
}

// roundIntegral rounds an integral column's bounds inward; a fractional
// forced value turns into an empty domain, caught by the caller.
func (ps *reducer) roundIntegral(j int) {
	if ps.integral == nil || j >= len(ps.integral) || !ps.integral[j] {
		return // synthetic slacks (j >= len) are continuous by construction
	}
	if l := math.Ceil(ps.l[j] - intRound); l > ps.l[j] {
		ps.l[j] = l
	}
	if u := math.Floor(ps.u[j] + intRound); u < ps.u[j] {
		ps.u[j] = u
	}
	if ps.l[j] > ps.u[j]+feasTol {
		ps.infeasible = true
	}
}

// fixCol substitutes the constant v for column j everywhere and records the
// fix for postsolve.
func (ps *reducer) fixCol(j int, v float64) {
	for _, ce := range ps.colEntries(j) {
		ps.b[ce.row] -= ce.v * v
		ps.removeEntry(ce.row, j)
	}
	ps.colAlive[j] = false
	ps.records = append(ps.records, record{kind: recFix, col: j, val: v})
	ps.stats.FixedCols++
}

// dropRow marks a row eliminated.
func (ps *reducer) dropRow(i int) {
	ps.rowAlive[i] = false
	ps.rows[i] = nil
	ps.stats.DroppedRows++
}

// colEntry locates column j in an alive row.
type colEntry struct {
	row int
	v   float64
}

// colEntries returns the alive rows containing column j with their
// coefficients, deduplicated (colRows is append-only and may hold stale or
// repeated row ids). The returned slice aliases a shared scratch buffer:
// it is valid only until the next colEntries call, so callers must not
// retain it across one (none does — the call sites either take len() or
// iterate without nested column queries).
func (ps *reducer) colEntries(j int) []colEntry {
	out := ps.ceScratch[:0]
	var seen map[int]bool
	if len(ps.colRows[j]) > 8 {
		seen = make(map[int]bool, len(ps.colRows[j]))
	}
	live := ps.colRows[j][:0]
	for _, i := range ps.colRows[j] {
		if !ps.rowAlive[i] {
			continue
		}
		if seen != nil {
			if seen[i] {
				continue
			}
			seen[i] = true
		} else {
			dup := false
			for _, p := range live {
				if p == i {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		if k := findCol(ps.rows[i], j); k >= 0 {
			live = append(live, i)
			out = append(out, colEntry{i, ps.rows[i][k].v})
		}
	}
	ps.colRows[j] = live
	ps.ceScratch = out[:0]
	return out
}

// findCol binary-searches a sorted row for column j.
func findCol(row []entry, j int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid].j < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo].j == j {
		return lo
	}
	return -1
}

// removeEntry deletes column j from row i.
func (ps *reducer) removeEntry(i, j int) {
	row := ps.rows[i]
	if k := findCol(row, j); k >= 0 {
		ps.rows[i] = append(row[:k], row[k+1:]...)
	}
}

// substPass eliminates columns through equality rows. For each alive EQ row
// it picks the pivot with the fewest other appearances (a singleton column
// is the zero-fill case) under stability and fill caps, replaces the pivot
// by its row-implied expression in every other row and the objective, and
// converts the host row into whichever of the pivot's bound constraints is
// not already implied by the remaining variables' bounds — dropping the row
// outright when both are (the implied-free case).
func (ps *reducer) substPass() bool {
	changed := false
	for i := 0; i < ps.m; i++ {
		if !ps.rowAlive[i] || ps.sense[i] != lp.EQ {
			continue
		}
		row := ps.rows[i]
		if len(row) < 2 {
			continue
		}
		maxAbs := 0.0
		for _, e := range row {
			if a := math.Abs(e.v); a > maxAbs {
				maxAbs = a
			}
		}
		// Scan pivot candidates starting at a row-dependent offset so ties
		// rotate: structured models (e.g. the paper's per-service Eq. 3
		// rows, whose candidates all tie) then spread their fill across
		// many rows instead of piling it into the first few columns' rows,
		// which would densify them and slow the basis factorization.
		best, bestCnt := -1, maxPivotRows+1
		start := i % len(row)
		for t := 0; t < len(row); t++ {
			e := row[(start+t)%len(row)]
			a := math.Abs(e.v)
			if a < 1e-7 || a < 1e-2*maxAbs {
				continue // numerically weak pivot
			}
			cnt := len(ps.colEntries(e.j)) - 1
			if cnt > maxPivotRows || cnt*(len(row)-1) > maxSubstFill {
				continue
			}
			if cnt < bestCnt {
				best, bestCnt = e.j, cnt
			}
		}
		if best < 0 {
			continue
		}
		if ps.substitute(i, best) {
			changed = true
		}
		if ps.infeasible {
			return changed
		}
	}
	return changed
}

// substitute eliminates column piv through EQ row i. Returns false when the
// pivot's bound constraints would both survive (a range row, which the
// Problem form cannot express), leaving the row untouched.
func (ps *reducer) substitute(i, piv int) bool {
	row := ps.rows[i]
	k := findCol(row, piv)
	if k < 0 {
		return false
	}
	a, b := row[k].v, ps.b[i]
	others := make([]entry, 0, len(row)-1)
	others = append(others, row[:k]...)
	others = append(others, row[k+1:]...)

	// x_piv = (b - others·x) / a must stay within [l,u]: each side is a
	// linear constraint on the others, kept only if not already implied by
	// their bounds.
	lPiv, uPiv := ps.l[piv], ps.u[piv]
	lowImplied, upImplied := true, true
	rhsLow, rhsUp := b-a*lPiv, 0.0
	if ps.assumeImplied {
		ps.assumeImplied = false
	} else {
		minAct, maxAct := ps.activity(others)
		// Side 1, x_piv >= l:  a>0: others <= b - a*l ;  a<0: others >= b - a*l.
		if a > 0 {
			lowImplied = maxAct <= rhsLow+redTol*(1+math.Abs(rhsLow))
		} else {
			lowImplied = minAct >= rhsLow-redTol*(1+math.Abs(rhsLow))
		}
		// Side 2, x_piv <= u: vacuous when u is infinite.
		upImplied = math.IsInf(uPiv, 1)
		if !upImplied {
			rhsUp = b - a*uPiv
			if a > 0 {
				upImplied = minAct >= rhsUp-redTol*(1+math.Abs(rhsUp))
			} else {
				upImplied = maxAct <= rhsUp+redTol*(1+math.Abs(rhsUp))
			}
		}
		// The host row is not the only source of implied pivot bounds: any
		// other row containing the pivot constrains it too (the textbook
		// implied-free check). When one of them forces a side the host row
		// leaves open, that side's residual constraint is redundant — on the
		// paper's encoding this is what fully deletes the Eq. 3 rows, since
		// y <= e implies every placement pivot's lower bound of zero.
		if !lowImplied || !upImplied {
			impLow, impUp := ps.impliedColBounds(piv, i)
			if !lowImplied && impLow >= lPiv-redTol*(1+math.Abs(lPiv)) {
				lowImplied = true
			}
			if !upImplied && impUp <= uPiv+redTol*(1+math.Abs(uPiv)) {
				upImplied = true
			}
		}
		if !lowImplied && !upImplied {
			return false
		}
	}

	// Rewrite every other row containing the pivot.
	for _, ce := range ps.colEntries(piv) {
		r := ce.row
		if r == i {
			continue
		}
		f := ce.v / a
		ps.removeEntry(r, piv)
		ps.rows[r] = addScaled(ps.rows[r], others, -f)
		ps.b[r] -= f * b
		for _, e := range others {
			ps.colRows[e.j] = append(ps.colRows[e.j], r)
		}
	}
	// And the objective (the constant c_piv*b/a drops; Postsolve recomputes
	// the true objective from the original coefficients).
	if ps.c[piv] != 0 { //vmalloc:nondet-ok structural zero test on stored objective coefficient
		f := ps.c[piv] / a
		for _, e := range others {
			ps.c[e.j] -= f * e.v
		}
		ps.c[piv] = 0
	}
	ps.colAlive[piv] = false
	ps.records = append(ps.records, record{
		kind: recSubst, col: piv, row: i, a: a, b: b,
		terms: append([]entry(nil), others...),
	})
	ps.stats.SubstCols++
	ps.pivotOf[i] = piv

	switch {
	case lowImplied && upImplied:
		ps.dropRow(i)
	case lowImplied:
		// Keep x_piv <= u:  a>0: others >= rhsUp ;  a<0: others <= rhsUp.
		ps.rows[i] = append([]entry(nil), others...)
		ps.b[i] = rhsUp
		if a > 0 {
			ps.sense[i] = lp.GE
		} else {
			ps.sense[i] = lp.LE
		}
	default:
		// Keep x_piv >= l:  a>0: others <= rhsLow ;  a<0: others >= rhsLow.
		ps.rows[i] = append([]entry(nil), others...)
		ps.b[i] = rhsLow
		if a > 0 {
			ps.sense[i] = lp.LE
		} else {
			ps.sense[i] = lp.GE
		}
	}
	return true
}

// vubPass eliminates doubleton inequality rows — variable-bound rows like
// the paper's Eq. 4 (y_jh - e_jh <= 0) — by introducing the row's slack as
// an explicit column, converting the row to an equality, and substituting
// the bounded variable out through it. Conversion is only paid when both of
// the pivot's bound constraints are implied (by the remaining variables'
// activity or by other rows), so the substitution deletes the row outright
// instead of morphing it back into an inequality. On the paper's encoding
// this removes all H*J Eq. 4 rows: the placement fraction's [0,1] range is
// implied by y,s >= 0 below and the Eq. 3 convexity row above, shrinking
// the 8x64 relaxation from 656 rows to under 150 and with it every
// per-iteration btran/ftran the simplex performs.
func (ps *reducer) vubPass() bool {
	changed := false
	for i := 0; i < ps.m; i++ {
		if !ps.rowAlive[i] || ps.sense[i] == lp.EQ || len(ps.rows[i]) != 2 {
			continue
		}
		row := ps.rows[i]
		if row[0].j == row[1].j {
			continue // degenerate duplicate-column row
		}
		sigma := 1.0 // slack sign: LE gains a slack, GE a surplus
		if ps.sense[i] == lp.GE {
			sigma = -1
		}
		maxAbs := math.Max(math.Abs(row[0].v), math.Abs(row[1].v))
		// Try the lower-fill candidate first and stop at the first that
		// qualifies: the implication check scans every row containing the
		// pivot, so the second candidate is only worth testing when the
		// first fails.
		first := 0
		if len(ps.colEntries(row[1].j)) < len(ps.colEntries(row[0].j)) {
			first = 1
		}
		best := -1
		for _, t := range [2]int{first, 1 - first} {
			piv, part := row[t], row[1-t]
			if a := math.Abs(piv.v); a < 1e-7 || a < 1e-2*maxAbs {
				continue // numerically weak pivot
			}
			if len(ps.colEntries(piv.j))-1 > maxPivotRows {
				continue
			}
			if ps.vubBothImplied(i, piv, part, sigma) {
				best = t
				break
			}
		}
		if best < 0 {
			continue
		}
		piv := row[best].j
		ps.addSlackCol(i, sigma)
		ps.sense[i] = lp.EQ
		// The substitution reuses the implications just proven (via
		// assumeImplied) and deletes the row; the converted row would remain
		// an exact reformulation of the inequality even if it survived.
		ps.assumeImplied = true
		ps.substitute(i, piv)
		changed = true
		if ps.infeasible {
			return changed
		}
	}
	return changed
}

// vubBothImplied reports whether, once doubleton row i gains its slack
// column, substituting piv out would leave both of piv's bound constraints
// implied — the only case worth paying a synthetic column for. This mirrors
// substitute's two-sided test with the prospective slack's [0, inf) range
// folded into the residual activity.
func (ps *reducer) vubBothImplied(i int, piv, part entry, sigma float64) bool {
	minAct, maxAct := ps.activity([]entry{part})
	if sigma > 0 {
		maxAct = math.Inf(1)
	} else {
		minAct = math.Inf(-1)
	}
	a, b := piv.v, ps.b[i]
	lPiv, uPiv := ps.l[piv.j], ps.u[piv.j]
	rhsLow := b - a*lPiv
	var lowImplied bool
	if a > 0 {
		lowImplied = maxAct <= rhsLow+redTol*(1+math.Abs(rhsLow))
	} else {
		lowImplied = minAct >= rhsLow-redTol*(1+math.Abs(rhsLow))
	}
	upImplied := math.IsInf(uPiv, 1)
	if !upImplied {
		rhsUp := b - a*uPiv
		if a > 0 {
			upImplied = minAct >= rhsUp-redTol*(1+math.Abs(rhsUp))
		} else {
			upImplied = maxAct <= rhsUp+redTol*(1+math.Abs(rhsUp))
		}
	}
	if !lowImplied || !upImplied {
		impLow, impUp := ps.impliedColBounds(piv.j, i)
		if !lowImplied && impLow >= lPiv-redTol*(1+math.Abs(lPiv)) {
			lowImplied = true
		}
		if !upImplied && impUp <= uPiv+redTol*(1+math.Abs(uPiv)) {
			upImplied = true
		}
	}
	return lowImplied && upImplied
}

// addSlackCol appends a fresh column holding row i's slack (sigma=+1) or
// surplus (sigma=-1): bounds [0, inf), zero objective, a single entry in
// row i. Postsolve treats the column as the original row's slack when
// rebuilding full-space bases.
func (ps *reducer) addSlackCol(i int, sigma float64) int {
	j := ps.n
	ps.n++
	ps.synRow = append(ps.synRow, i)
	ps.l = append(ps.l, 0)
	ps.u = append(ps.u, math.Inf(1))
	ps.c = append(ps.c, 0)
	ps.colAlive = append(ps.colAlive, true)
	ps.colRows = append(ps.colRows, []int{i})
	ps.rows[i] = append(ps.rows[i], entry{j, sigma}) // j exceeds every id: row stays sorted
	ps.stats.DoubletonSlacks++
	return j
}

// impliedColBounds returns the tightest bounds on column piv implied by
// alive rows other than skipRow, each evaluated at the other variables'
// residual activity extremes (the same derivation propagate uses, without
// committing the tightened bound). ±Inf when no row constrains a side.
func (ps *reducer) impliedColBounds(piv, skipRow int) (impLow, impUp float64) {
	impLow, impUp = math.Inf(-1), math.Inf(1)
	for _, ce := range ps.colEntries(piv) {
		if ce.row == skipRow || math.Abs(ce.v) < dropCoefTol {
			continue
		}
		minAct, maxAct := ps.activity(ps.rows[ce.row])
		var restMin, restMax float64
		if ce.v > 0 {
			restMin, restMax = minAct-ce.v*ps.l[piv], maxAct-ce.v*ps.u[piv]
		} else {
			restMin, restMax = minAct-ce.v*ps.u[piv], maxAct-ce.v*ps.l[piv]
		}
		b := ps.b[ce.row]
		le := ps.sense[ce.row] == lp.LE || ps.sense[ce.row] == lp.EQ
		ge := ps.sense[ce.row] == lp.GE || ps.sense[ce.row] == lp.EQ
		if le && !math.IsInf(restMin, 0) && !math.IsNaN(restMin) {
			bound := (b - restMin) / ce.v
			if ce.v > 0 {
				impUp = math.Min(impUp, bound)
			} else {
				impLow = math.Max(impLow, bound)
			}
		}
		if ge && !math.IsInf(restMax, 0) && !math.IsNaN(restMax) {
			bound := (b - restMax) / ce.v
			if ce.v > 0 {
				impLow = math.Max(impLow, bound)
			} else {
				impUp = math.Min(impUp, bound)
			}
		}
	}
	return impLow, impUp
}

// addScaled merges dst + f*src over sorted rows, dropping entries that
// cancel below dropCoefTol.
func addScaled(dst, src []entry, f float64) []entry {
	out := make([]entry, 0, len(dst)+len(src))
	di, si := 0, 0
	for di < len(dst) || si < len(src) {
		switch {
		case si == len(src) || (di < len(dst) && dst[di].j < src[si].j):
			out = append(out, dst[di])
			di++
		case di == len(dst) || src[si].j < dst[di].j:
			if v := f * src[si].v; math.Abs(v) >= dropCoefTol {
				out = append(out, entry{src[si].j, v})
			}
			si++
		default:
			if v := dst[di].v + f*src[si].v; math.Abs(v) >= dropCoefTol {
				out = append(out, entry{dst[di].j, v})
			}
			di++
			si++
		}
	}
	return out
}

// emit builds the reduced lp.Problem. GE rows are normalized to LE by
// negation here: with a nonnegative right-hand side a LE slack enters the
// initial basis directly, while the equivalent GE row would demand a
// phase-1 artificial — the normalization is what lets fully-presolved
// models start phase 2 immediately. Slack values and statuses are identical
// either way (s = |a·x - b|), so basis mapping is unaffected.
func (ps *reducer) emit(maxIter int) (red *lp.Problem, colKeep, rowKeep, colMap, rowMap []int) {
	for j := 0; j < ps.n; j++ {
		if ps.colAlive[j] {
			colKeep = append(colKeep, j)
		}
	}
	for i := 0; i < ps.m; i++ {
		if ps.rowAlive[i] {
			rowKeep = append(rowKeep, i)
		}
	}
	colMap = fullMap(ps.n, colKeep)
	rowMap = fullMap(ps.m, rowKeep)

	nr, mr := len(colKeep), len(rowKeep)
	builder := lp.NewSparseBuilder(nr)
	senses := make([]lp.Sense, mr)
	bs := make([]float64, mr)
	for rr, i := range rowKeep {
		flip := ps.sense[i] == lp.GE
		sgn := 1.0
		if flip {
			sgn = -1
			senses[rr] = lp.LE
		} else {
			senses[rr] = ps.sense[i]
		}
		bs[rr] = sgn * ps.b[i]
		for _, e := range ps.rows[i] {
			builder.Add(rr, colMap[e.j], sgn*e.v)
		}
	}
	obj := make([]float64, nr)
	lower := make([]float64, nr)
	upper := make([]float64, nr)
	for cr, j := range colKeep {
		obj[cr] = ps.c[j]
		lower[cr] = ps.l[j]
		upper[cr] = ps.u[j]
	}
	red = &lp.Problem{
		Obj:     obj,
		Cols:    builder.Build(mr),
		Sense:   senses,
		B:       bs,
		Upper:   upper,
		Lower:   lower,
		MaxIter: maxIter,
	}
	return red, colKeep, rowKeep, colMap, rowMap
}
