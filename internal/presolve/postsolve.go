// Postsolve: translate a reduced-model solution back to the original
// variable and row space. The primal comes from unwinding the record stack
// in reverse; the simplex basis is rebuilt wholesale from the reduced basis
// plus the reduction maps, so a warm start on the full model (or a verified
// optimal basis for it) survives presolve.

package presolve

import (
	"fmt"
	"math"

	"vmalloc/internal/lp"
)

// Postsolve maps a solution of the reduced model back to the original
// problem. For Outcome() == Solved pass nil. The result reports the
// original-space primal, the objective recomputed from the original
// coefficients (term order matches the solvers', so an unreduced solve of
// the same vertex produces the identical float), and a reconstructed
// full-space Basis when one exists (nil when an eliminated variable lands
// strictly between its bounds, where no nonbasic status is valid — callers
// treat a nil basis as a cold start). Dual values are not reconstructed:
// Duals and BoundDuals are nil on the presolved path.
func (r *Reduction) Postsolve(sol *lp.Solution) (*lp.Solution, error) {
	switch r.outcome {
	case Infeasible:
		return &lp.Solution{Status: lp.Infeasible}, nil
	case Unbounded:
		return &lp.Solution{Status: lp.Unbounded}, nil
	case Solved:
		if sol != nil {
			return nil, fmt.Errorf("presolve: Postsolve(non-nil) on a fully solved reduction")
		}
		full := &lp.Solution{Status: lp.Optimal}
		r.fillPrimal(full, nil)
		full.Basis = r.fullBasis(nil, full.X)
		return full, nil
	}
	if sol == nil {
		return nil, fmt.Errorf("presolve: Postsolve(nil) on a reduced (not solved) model")
	}
	if sol.Status != lp.Optimal {
		// Infeasibility/unboundedness of the reduced model carries over:
		// every reduction preserves both directions.
		return &lp.Solution{Status: sol.Status, Iters: sol.Iters, WarmStarted: sol.WarmStarted}, nil
	}
	if len(sol.X) != len(r.colKeep) {
		return nil, fmt.Errorf("presolve: reduced solution has %d variables, want %d", len(sol.X), len(r.colKeep))
	}
	full := &lp.Solution{Status: lp.Optimal, Iters: sol.Iters, WarmStarted: sol.WarmStarted}
	r.fillPrimal(full, sol.X)
	full.Basis = r.fullBasis(sol.Basis, full.X)
	return full, nil
}

// fillPrimal reconstructs the original-space primal and objective. The work
// vector covers the synthetic doubleton slacks too — substitution records
// may express an eliminated column in terms of one — but only the original
// n0 entries are reported.
func (r *Reduction) fillPrimal(full *lp.Solution, redX []float64) {
	x := make([]float64, r.n0+len(r.synRow))
	for cr, j := range r.colKeep {
		x[j] = redX[cr]
	}
	// Unwind eliminations newest-first: a substitution's terms refer to
	// columns eliminated before it, which are restored after it.
	for k := len(r.records) - 1; k >= 0; k-- {
		rec := &r.records[k]
		switch rec.kind {
		case recFix:
			x[rec.col] = rec.val
		case recSubst:
			s := rec.b
			for _, t := range rec.terms {
				s -= t.v * x[t.j]
			}
			x[rec.col] = s / rec.a
		}
	}
	full.X = x[:r.n0]
	for j, c := range r.orig.Obj {
		full.Objective += c * x[j]
	}
}

// fullBasis rebuilds a basis for the original problem from the reduced
// basis. Kept rows carry their reduced basic column over (structural
// columns via the keep map, slacks and artificials via the row maps);
// dropped inequality rows seat their slack, dropped equalities their
// artificial (value ~0, since the postsolved point satisfies them), and
// substitution rows seat the pivot column wherever the reduced slack that
// replaced it was basic. Nonbasic statuses for eliminated columns come from
// comparing the postsolved value against the original bounds; a strictly
// interior value has no valid status, making the whole reconstruction
// return nil (callers fall back to a cold start). Numerical fitness is not
// checked here — installBasis verifies nonsingularity and feasibility and
// likewise falls back cheaply.
func (r *Reduction) fullBasis(redBasis *lp.Basis, x []float64) *lp.Basis {
	if r.outcome == Reduced && redBasis == nil {
		return nil
	}
	fullSlackOf := lp.SlackColumns(r.origSense, r.n0)
	nRealFull := r.n0
	for _, s := range r.origSense {
		if s != lp.EQ {
			nRealFull++
		}
	}
	basicFull := make([]int, r.m0)
	for i := range basicFull {
		basicFull[i] = -1
	}
	nonbas := make([]lp.BasisVarStatus, nRealFull) // default BasisAtLower

	var basicRed []int
	var nonbasRed []lp.BasisVarStatus
	var slackRowRed []int
	nsRed, nRealRed := 0, 0
	if redBasis != nil {
		basicRed, nonbasRed = redBasis.Export()
		var mRed int
		mRed, nsRed, nRealRed = redBasis.Dims()
		if mRed != len(r.rowKeep) || nsRed != len(r.colKeep) {
			return nil // basis from a different model; cannot map
		}
		redSlackOf := lp.SlackColumns(r.reduced.Sense, nsRed)
		slackRowRed = make([]int, nRealRed-nsRed)
		for rr, sc := range redSlackOf {
			if sc >= 0 {
				slackRowRed[sc-nsRed] = rr
			}
		}
	}

	// fullColOf maps a reducer column id to the full model's: original
	// structural columns are themselves; synthetic doubleton slacks are the
	// slack of the inequality row they were created for (never EQ, so the
	// slack always exists).
	fullColOf := func(j int) int {
		if j < r.n0 {
			return j
		}
		return fullSlackOf[r.synRow[j-r.n0]]
	}

	// mapRedCol translates a reduced equality-form column to the full one.
	mapRedCol := func(cr int) int {
		switch {
		case cr < nsRed:
			return fullColOf(r.colKeep[cr])
		case cr < nRealRed:
			i := r.rowKeep[slackRowRed[cr-nsRed]]
			if r.pivotOf[i] >= 0 {
				return fullColOf(r.pivotOf[i]) // morphed EQ row: slack stands in for the pivot
			}
			return fullSlackOf[i]
		default:
			return nRealFull + r.rowKeep[cr-nRealRed]
		}
	}

	// Row activities at the postsolved point: they decide whether a
	// converted doubleton row seats its pivot or its slack, and seatInterior
	// reuses them to find tight rows.
	act := r.rowActivities(x)

	isBasic := make(map[int]bool, r.m0)
	claim := func(i, col int) bool {
		if isBasic[col] {
			return false // two rows claimed one column; no coherent basis
		}
		isBasic[col] = true
		basicFull[i] = col
		return true
	}
	for rr, cr := range basicRed {
		if !claim(r.rowKeep[rr], mapRedCol(cr)) {
			return nil
		}
	}
	for i := 0; i < r.m0; i++ {
		if basicFull[i] >= 0 {
			continue // kept row, already mapped
		}
		switch {
		case r.rowMap != nil && r.rowMap[i] >= 0:
			// Kept row whose reduced basic column failed to map — cannot
			// happen given the maps above, but fail safe.
			return nil
		case r.pivotOf[i] >= 0:
			col := fullColOf(r.pivotOf[i]) // dropped substitution row: pivot basic
			if r.origSense[i] != lp.EQ {
				// Converted doubleton row. When the original inequality is
				// slack at the postsolved point, the slack column — not the
				// pivot — must be the basic one here (nonbasic slacks pin
				// the row tight); the displaced pivot then rests at a bound
				// or is seated elsewhere by seatInterior.
				if fs := fullSlackOf[i]; !isBasic[fs] &&
					math.Abs(act[i]-r.orig.B[i]) > feasTol*(1+math.Abs(r.orig.B[i])) {
					col = fs
				}
			}
			if !claim(i, col) {
				return nil
			}
		case r.origSense[i] != lp.EQ:
			if !claim(i, fullSlackOf[i]) { // dropped inequality: slack basic
				return nil
			}
		default:
			if !claim(i, nRealFull+i) { // dropped equality: artificial at ~0
				return nil
			}
		}
	}

	// Surviving synthetic slacks keep their reduced status (nonbasic means
	// the doubleton row is tight, value zero under either model). Original
	// structural columns — surviving or eliminated — are statused from
	// their postsolved value against the ORIGINAL bounds below instead of
	// copying the reduced status: the reduced model's bounds may have been
	// tightened by propagation, and a column nonbasic at a tightened bound
	// is strictly interior in full space. Surviving inequality rows' slacks
	// keep the status of the reduced slack.
	for cr, j := range r.colKeep {
		if j >= r.n0 {
			nonbas[fullColOf(j)] = nonbasRed[cr]
		}
	}
	if redBasis != nil {
		redSlackOf := lp.SlackColumns(r.reduced.Sense, nsRed)
		for rr, sc := range redSlackOf {
			if sc < 0 {
				continue
			}
			i := r.rowKeep[rr]
			if r.pivotOf[i] >= 0 {
				// Morphed substitution row: the reduced slack stands in for
				// the pivot, whose status is derived from its value below —
				// it says nothing about the original row's own slack.
				continue
			}
			if fs := fullSlackOf[i]; fs >= 0 {
				nonbas[fs] = nonbasRed[sc]
			}
		}
	}

	// Nonbasic columns rest at whichever original bound their postsolved
	// value matches; a strictly interior value (a column held by a
	// tightened, non-original bound) has no nonbasic status and must be
	// seated basic in one of the tight dropped rows that determined it.
	var interior []int
	for j := 0; j < r.n0; j++ {
		if isBasic[j] {
			continue
		}
		switch {
		case math.Abs(x[j]-r.origL[j]) <= feasTol*(1+math.Abs(r.origL[j])):
			nonbas[j] = lp.BasisAtLower
		case !math.IsInf(r.origU[j], 1) && math.Abs(x[j]-r.origU[j]) <= feasTol*(1+math.Abs(r.origU[j])):
			nonbas[j] = lp.BasisAtUpper
		default:
			interior = append(interior, j)
		}
	}
	if len(interior) > 0 && !r.seatInterior(interior, act, basicFull, isBasic, nonbas, fullSlackOf, nRealFull) {
		return nil
	}

	b, err := lp.NewBasis(r.origSense, r.n0, basicFull, nonbas)
	if err != nil {
		return nil
	}
	return b
}

// rowActivities evaluates every original row's left-hand side at the
// postsolved point x.
func (r *Reduction) rowActivities(x []float64) []float64 {
	c := r.origCols
	act := make([]float64, r.m0)
	for j := 0; j < c.N; j++ {
		for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
			act[c.RowIdx[k]] += c.Val[k] * x[j]
		}
	}
	return act
}

// seatInterior places columns whose postsolved value is strictly interior
// to their original bounds. Such a value always comes from a tightened
// bound, and a bound derived by propagation can only bind when its source
// row is tight with every other member at an extreme — so a tight row
// containing the column exists, and the column belongs basic in it. A row
// is eligible while its own slack or artificial holds the basic seat
// (their value at a tight row is 0, so displacing one to nonbasic-at-lower
// keeps the same point); rows whose seat holds a structural column or
// another row's slack are left alone. Reports whether every column found a
// row.
func (r *Reduction) seatInterior(interior []int, act []float64, basicFull []int, isBasic map[int]bool, nonbas []lp.BasisVarStatus, fullSlackOf []int, nRealFull int) bool {
	c := r.origCols
	rowOfSlack := make(map[int]int, r.m0)
	for i, fs := range fullSlackOf {
		if fs >= 0 {
			rowOfSlack[fs] = i
		}
	}
	for _, j := range interior {
		seated := false
		for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
			i := c.RowIdx[k]
			bc := basicFull[i]
			if bc < r.n0 {
				continue // a structural column is already seated here
			}
			// bc is some row's slack or artificial; its value is that row's
			// own residual, which must be ~0 for the displacement to keep
			// the same point.
			src := bc - nRealFull
			if bc < nRealFull {
				src = rowOfSlack[bc]
			}
			if math.Abs(act[src]-r.orig.B[src]) > feasTol*(1+math.Abs(r.orig.B[src])) {
				continue // slack strictly positive: it must stay basic
			}
			delete(isBasic, bc)
			if bc < nRealFull {
				nonbas[bc] = lp.BasisAtLower // displaced slack sits at 0
			}
			basicFull[i] = j
			isBasic[j] = true
			seated = true
			break
		}
		if !seated {
			return false
		}
	}
	return true
}
