package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openRW(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOSPassthrough: the OS implementation behaves like the os package for
// the full surface the journal uses.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a/b/f")
	f := openRW(t, fsys, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if data, err := fsys.ReadFile(path); err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	moved := filepath.Join(dir, "a/b/g")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Truncate(moved, 2); err != nil {
		t.Fatal(err)
	}
	if data, _ := fsys.ReadFile(moved); string(data) != "he" {
		t.Fatalf("after truncate: %q", data)
	}
	entries, err := fsys.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(entries) != 1 || entries[0].Name() != "g" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile(moved); !os.IsNotExist(err) {
		t.Fatalf("want not-exist after remove, got %v", err)
	}
}

// TestInjectWriteCountdown: the first `after` writes succeed, then every
// write fails with ErrInjected and (untorn) leaves the file unchanged.
func TestInjectWriteCountdown(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 1)
	inj.FailWrites(2, false)
	f := openRW(t, inj, filepath.Join(dir, "f"))
	defer f.Close()
	for k := 0; k < 2; k++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("faults must be sticky, got %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(data) != "okok" {
		t.Fatalf("file = %q, %v; failed writes must not land bytes", data, err)
	}
	c := inj.Counts()
	if c.Ops[OpWrite] != 4 || c.Injected[OpWrite] != 2 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestInjectTornWrite: a torn write lands a strict prefix and still errors —
// the caller sees failure, the file sees garbage, exactly like a crash
// mid-write.
func TestInjectTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 42)
	inj.FailWrites(0, true)
	f := openRW(t, inj, filepath.Join(dir, "f"))
	defer f.Close()
	payload := []byte("0123456789abcdef0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write reported %d of %d bytes", n, len(payload))
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if len(data) != n || string(data) != string(payload[:n]) {
		t.Fatalf("file holds %q, reported prefix %d", data, n)
	}
}

// TestInjectTornWriteDeterministic: the same seed tears at the same offset.
func TestInjectTornWriteDeterministic(t *testing.T) {
	tear := func() int {
		dir := t.TempDir()
		inj := NewInjector(nil, 7)
		inj.FailWrites(0, true)
		f := openRW(t, inj, filepath.Join(dir, "f"))
		defer f.Close()
		n, _ := f.Write(make([]byte, 1024))
		return n
	}
	if a, b := tear(), tear(); a != b {
		t.Fatalf("same seed tore at %d then %d", a, b)
	}
}

// TestInjectSyncAndRename: fsync and rename faults fire on countdown.
func TestInjectSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 1)
	inj.FailSyncs(1)
	f := openRW(t, inj, filepath.Join(dir, "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: %v, want ErrInjected", err)
	}

	inj.FailRenames(0)
	if err := inj.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "f")); err != nil {
		t.Fatalf("failed rename must leave the source: %v", err)
	}
}

// TestInjectShortRead: an armed ReadFile returns a strict prefix without an
// error — the caller must detect truncation itself (the journal does, by
// frame CRC).
func TestInjectShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(nil, 3)
	inj.ShortReads(0)
	data, err := inj.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= 4096 {
		t.Fatalf("short read returned %d of 4096 bytes", len(data))
	}
	inj.Disarm()
	if data, _ := inj.ReadFile(path); len(data) != 4096 {
		t.Fatalf("disarmed read returned %d bytes", len(data))
	}
}

// TestTortureDeterministic: probabilistic arming fires the same fault
// schedule for the same seed over a serialized op sequence.
func TestTortureDeterministic(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		inj := NewInjector(nil, 99)
		inj.Torture(0.3, 0.3, 0)
		f := openRW(t, inj, filepath.Join(dir, "f"))
		defer f.Close()
		var fired []bool
		for k := 0; k < 32; k++ {
			_, werr := f.Write([]byte("x"))
			serr := f.Sync()
			fired = append(fired, werr != nil, serr != nil)
		}
		return fired
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("op %d: run A fired=%v, run B fired=%v", k, a[k], b[k])
		}
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatal("p=0.3 over 64 ops fired nothing; torture is vacuous")
	}
}
