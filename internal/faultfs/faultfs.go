// Package faultfs is the filesystem seam under the write-ahead log: an
// interface covering exactly the operations the journal performs, a real-OS
// passthrough, and a deterministic fault injector that can fail, tear, or
// shorten individual operations on command.
//
// The injector exists to make crash-safety claims testable. "A record is
// never acknowledged and then lost" is only believable when the fsync that
// was supposed to make it durable actually fails in a test and the
// acknowledgement provably does not happen. Injection is deterministic:
// faults fire by operation count (the Nth write, the Nth fsync) or by a
// seeded PRNG, so a failing torture run reproduces from its seed.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
)

// File is the subset of *os.File the journal writes and reads through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem surface the journal runs on. The real implementation
// is OS; tests thread an Injector.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(name string, perm fs.FileMode) error
	Rename(oldname, newname string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// OS is the passthrough FS over the real operating system.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }
func (OS) Rename(oldname, newname string) error         { return os.Rename(oldname, newname) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// ErrInjected marks every fault the injector fires; errors.Is(err, ErrInjected)
// distinguishes injected faults from real I/O failures in assertions.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names a faultable operation kind.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpRename
	OpRead
	numOps
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRead:
		return "read"
	}
	return "unknown"
}

// arm is the per-op trigger state: fire after `after` more successful
// operations (-1 = disarmed), or fire each op with probability p.
type arm struct {
	after int // countdown; -1 disarmed, 0 means fire now
	p     float64
}

func (a *arm) fire(rng *rand.Rand) bool {
	if a.after >= 0 {
		if a.after == 0 {
			return true
		}
		a.after--
		return false
	}
	return a.p > 0 && rng.Float64() < a.p
}

// Counts is a point-in-time snapshot of operations seen and faults fired,
// indexed by Op.
type Counts struct {
	Ops      [numOps]uint64
	Injected [numOps]uint64
}

// Injector wraps an inner FS (OS when nil) and fires faults on write, fsync,
// rename, and read according to its arming. All methods are safe for
// concurrent use; determinism holds for any serialized operation order.
type Injector struct {
	inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	arms   [numOps]arm
	torn   bool // failed writes land a PRNG-sized prefix first
	counts Counts
}

// NewInjector returns an injector over inner (OS when nil) with every fault
// disarmed. seed drives torn-write prefix sizes and probabilistic arming.
func NewInjector(inner FS, seed int64) *Injector {
	if inner == nil {
		inner = OS{}
	}
	inj := &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
	for i := range inj.arms {
		inj.arms[i].after = -1
	}
	return inj
}

// FailWrites arms write faults: the next `after` writes succeed, every write
// from then on fails. torn selects whether a failing write first lands a
// random prefix of the buffer (a torn write) or writes nothing.
func (i *Injector) FailWrites(after int, torn bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arms[OpWrite] = arm{after: after}
	i.torn = torn
}

// FailSyncs arms fsync faults after `after` more successful syncs.
func (i *Injector) FailSyncs(after int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arms[OpSync] = arm{after: after}
}

// FailRenames arms rename faults after `after` more successful renames.
func (i *Injector) FailRenames(after int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arms[OpRename] = arm{after: after}
}

// ShortReads arms read faults after `after` more successful whole-file reads:
// ReadFile then returns a PRNG-chosen strict prefix of the content (and File
// reads fail), simulating a torn read of a file another node wrote.
func (i *Injector) ShortReads(after int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arms[OpRead] = arm{after: after}
}

// Torture arms every faultable operation probabilistically: each write fails
// (torn) with probability pWrite, each fsync with pSync, each rename with
// pRename. Deterministic given the injector seed and a serialized op order.
func (i *Injector) Torture(pWrite, pSync, pRename float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arms[OpWrite] = arm{after: -1, p: pWrite}
	i.arms[OpSync] = arm{after: -1, p: pSync}
	i.arms[OpRename] = arm{after: -1, p: pRename}
	i.torn = true
}

// Disarm clears every armed fault; the injector becomes a passthrough.
func (i *Injector) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	for k := range i.arms {
		i.arms[k] = arm{after: -1}
	}
	i.torn = false
}

// Counts returns operations seen and faults fired so far.
func (i *Injector) Counts() Counts {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}

// decide records one operation of kind op and reports whether it must fail.
// For writes it also returns the torn-prefix length (0..n-1) to land first.
func (i *Injector) decide(op Op, n int) (fail bool, torn int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts.Ops[op]++
	if !i.arms[op].fire(i.rng) {
		return false, 0
	}
	i.counts.Injected[op]++
	if op == OpWrite && i.torn && n > 0 {
		torn = i.rng.Intn(n)
	}
	if op == OpRead && n > 0 {
		torn = i.rng.Intn(n)
	}
	return true, torn
}

func injErr(op Op, name string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, i: i, name: name}, nil
}

func (i *Injector) Open(name string) (File, error) {
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, i: i, name: name}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	data, err := i.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if fail, short := i.decide(OpRead, len(data)); fail {
		return data[:short], nil
	}
	return data, nil
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }
func (i *Injector) MkdirAll(name string, perm fs.FileMode) error {
	return i.inner.MkdirAll(name, perm)
}

func (i *Injector) Rename(oldname, newname string) error {
	if fail, _ := i.decide(OpRename, 0); fail {
		return injErr(OpRename, newname)
	}
	return i.inner.Rename(oldname, newname)
}

func (i *Injector) Remove(name string) error               { return i.inner.Remove(name) }
func (i *Injector) Truncate(name string, size int64) error { return i.inner.Truncate(name, size) }

// injFile threads a file's write/sync/read path back through the injector.
type injFile struct {
	f    File
	i    *Injector
	name string
}

func (f *injFile) Write(b []byte) (int, error) {
	if fail, torn := f.i.decide(OpWrite, len(b)); fail {
		if torn > 0 {
			// A torn write: part of the buffer reaches the file before the
			// failure, exactly like a crash mid-write.
			n, err := f.f.Write(b[:torn])
			if err != nil {
				return n, err
			}
		}
		return torn, injErr(OpWrite, f.name)
	}
	return f.f.Write(b)
}

func (f *injFile) Sync() error {
	if fail, _ := f.i.decide(OpSync, 0); fail {
		return injErr(OpSync, f.name)
	}
	return f.f.Sync() //vmalloc:nondet-ok injection seam must forward the journal-issued fsync to the real file
}

func (f *injFile) Read(b []byte) (int, error) {
	if fail, _ := f.i.decide(OpRead, len(b)); fail {
		return 0, injErr(OpRead, f.name)
	}
	return f.f.Read(b)
}

func (f *injFile) Close() error                                 { return f.f.Close() }
func (f *injFile) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }
