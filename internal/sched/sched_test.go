package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

func TestWaterFillAllSatisfied(t *testing.T) {
	alloc := WaterFill(1.0, []float64{1, 1}, []float64{0.3, 0.4})
	if math.Abs(alloc[0]-0.3) > 1e-9 || math.Abs(alloc[1]-0.4) > 1e-9 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestWaterFillProportionalWhenScarce(t *testing.T) {
	alloc := WaterFill(1.0, []float64{1, 1}, []float64{2, 2})
	if math.Abs(alloc[0]-0.5) > 1e-6 || math.Abs(alloc[1]-0.5) > 1e-6 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestWaterFillRedistributesSurplus(t *testing.T) {
	// Service 0 needs only 0.1; its unused share flows to service 1.
	alloc := WaterFill(1.0, []float64{1, 1}, []float64{0.1, 5})
	if math.Abs(alloc[0]-0.1) > 1e-6 {
		t.Fatalf("alloc[0] = %v", alloc[0])
	}
	if math.Abs(alloc[1]-0.9) > 1e-3 {
		t.Fatalf("alloc[1] = %v, want ~0.9 (work conserving)", alloc[1])
	}
}

func TestWaterFillWeighted(t *testing.T) {
	// Weights 3:1 with both insatiable: allocations split 0.75/0.25.
	alloc := WaterFill(1.0, []float64{3, 1}, []float64{10, 10})
	if math.Abs(alloc[0]-0.75) > 1e-6 || math.Abs(alloc[1]-0.25) > 1e-6 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestWaterFillZeroWeightGetsLeftovers(t *testing.T) {
	alloc := WaterFill(1.0, []float64{1, 0}, []float64{0.2, 0.5})
	if math.Abs(alloc[0]-0.2) > 1e-6 {
		t.Fatalf("alloc[0] = %v", alloc[0])
	}
	if math.Abs(alloc[1]-0.5) > 1e-3 {
		t.Fatalf("alloc[1] = %v (leftover should satisfy it)", alloc[1])
	}
}

func TestWaterFillNeverExceedsCapacityOrDemand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		w := make([]float64, n)
		d := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
			d[i] = rng.Float64() * 2
		}
		c := rng.Float64() * 3
		alloc := WaterFill(c, w, d)
		sum := 0.0
		for i, a := range alloc {
			if a < -1e-9 || a > d[i]+1e-6 {
				return false
			}
			sum += a
		}
		return sum <= c+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWaterFillWorkConserving(t *testing.T) {
	// Whenever total demand >= capacity, (almost) all capacity is used.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		w := make([]float64, n)
		d := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = 0.1 + rng.Float64()
			d[i] = 0.2 + rng.Float64()
			total += d[i]
		}
		c := total * (0.3 + 0.6*rng.Float64()) // capacity below total demand
		alloc := WaterFill(c, w, d)
		sum := 0.0
		for _, a := range alloc {
			sum += a
		}
		return sum >= c-1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateOptimalYield(t *testing.T) {
	nc := &NodeCPU{
		Capacity:  1.0,
		Req:       []float64{0.1, 0.1},
		Estimated: []float64{0.4, 0.4},
		TrueNeed:  []float64{0.4, 0.4},
	}
	// free = 0.8, sum est = 0.8 -> yield 1.
	if y := nc.EstimateOptimalYield(); math.Abs(y-1.0) > 1e-9 {
		t.Fatalf("y* = %v", y)
	}
	nc.Estimated = []float64{0.8, 0.8}
	if y := nc.EstimateOptimalYield(); math.Abs(y-0.5) > 1e-9 {
		t.Fatalf("y* = %v", y)
	}
}

func TestAllocCapsPerfectEstimates(t *testing.T) {
	nc := &NodeCPU{
		Capacity:  1.0,
		Req:       []float64{0, 0},
		Estimated: []float64{1.0, 1.0},
		TrueNeed:  []float64{1.0, 1.0},
	}
	ys := nc.Yields(AllocCaps)
	for i, y := range ys {
		if math.Abs(y-0.5) > 1e-9 {
			t.Fatalf("yield[%d] = %v, want 0.5", i, y)
		}
	}
}

func TestAllocCapsWastesOnOverestimate(t *testing.T) {
	// Service 0's need is overestimated: its cap goes unused while service
	// 1 starves — the classic ALLOCCAPS failure (§6.2).
	nc := &NodeCPU{
		Capacity:  1.0,
		Req:       []float64{0, 0},
		Estimated: []float64{0.9, 0.1}, // estimates
		TrueNeed:  []float64{0.1, 0.9}, // reality is reversed
	}
	capsMin := nc.MinYield(AllocCaps)
	weightsMin := nc.MinYield(AllocWeights)
	equalMin := nc.MinYield(EqualWeights)
	if capsMin >= weightsMin-1e-9 {
		t.Fatalf("ALLOCCAPS %v should lose to ALLOCWEIGHTS %v here", capsMin, weightsMin)
	}
	if equalMin <= capsMin {
		t.Fatalf("EQUALWEIGHTS %v should beat ALLOCCAPS %v here", equalMin, capsMin)
	}
}

func TestEqualWeightsIgnoresEstimates(t *testing.T) {
	a := &NodeCPU{Capacity: 1, Req: []float64{0, 0}, Estimated: []float64{0.1, 5}, TrueNeed: []float64{0.6, 0.6}}
	b := &NodeCPU{Capacity: 1, Req: []float64{0, 0}, Estimated: []float64{5, 0.1}, TrueNeed: []float64{0.6, 0.6}}
	ya, yb := a.Yields(EqualWeights), b.Yields(EqualWeights)
	for i := range ya {
		if math.Abs(ya[i]-yb[i]) > 1e-9 {
			t.Fatalf("EQUALWEIGHTS must not depend on estimates: %v vs %v", ya, yb)
		}
	}
}

// Theorem 1: EQUALWEIGHTS is (2J-1)/J^2 competitive in the worst case, and
// the instance n_1 = 1, n_j = 1/J achieves the ratio exactly.
func TestEqualWeightsCompetitiveRatioTightInstance(t *testing.T) {
	for _, J := range []int{2, 3, 5, 10, 25} {
		needs := make([]float64, J)
		needs[0] = 1
		for j := 1; j < J; j++ {
			needs[j] = 1 / float64(J)
		}
		nc := &NodeCPU{
			Capacity:  1,
			Req:       make([]float64, J),
			Estimated: make([]float64, J), // EQUALWEIGHTS ignores these
			TrueNeed:  needs,
		}
		got := nc.MinYield(EqualWeights)
		// Optimal min yield = 1 / sum(needs) = 1 / (1 + (J-1)/J).
		sum := 0.0
		for _, n := range needs {
			sum += n
		}
		opt := 1 / sum
		ratio := got / opt
		want := CompetitiveLowerBound(J)
		if math.Abs(ratio-want) > 2e-3 {
			t.Fatalf("J=%d: ratio %v, want %v (got yield %v, opt %v)", J, ratio, want, got, opt)
		}
	}
}

// Random single-node instances never violate the theorem's bound.
func TestEqualWeightsNeverBelowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		J := 2 + rng.Intn(10)
		needs := make([]float64, J)
		sum := 0.0
		for j := range needs {
			needs[j] = 0.01 + rng.Float64()
			sum += needs[j]
		}
		if sum <= 1 {
			continue // every service satisfiable: ratio is 1
		}
		nc := &NodeCPU{
			Capacity:  1,
			Req:       make([]float64, J),
			Estimated: make([]float64, J),
			TrueNeed:  needs,
		}
		got := nc.MinYield(EqualWeights)
		opt := 1 / sum
		bound := CompetitiveLowerBound(J)
		if got/opt < bound-1e-2 {
			t.Fatalf("iter %d J=%d: ratio %v below bound %v (needs %v)", iter, J, got/opt, bound, needs)
		}
	}
}

func TestCompetitiveLowerBoundValues(t *testing.T) {
	if CompetitiveLowerBound(0) != 0 {
		t.Fatal("J=0 should be 0")
	}
	if math.Abs(CompetitiveLowerBound(1)-1) > 1e-12 {
		t.Fatal("J=1 bound should be 1 (single service gets everything)")
	}
	if math.Abs(CompetitiveLowerBound(2)-0.75) > 1e-12 {
		t.Fatalf("J=2 bound = %v, want 0.75", CompetitiveLowerBound(2))
	}
}

func testProblem() *core.Problem {
	n := core.Node{Elementary: vec.Of(0.25, 1), Aggregate: vec.Of(1, 1)}
	mk := func(need, mem float64) core.Service {
		return core.Service{
			ReqElem:  vec.Of(0.01, mem),
			ReqAgg:   vec.Of(0, mem),
			NeedElem: vec.Of(need/4, 0),
			NeedAgg:  vec.Of(need, 0),
		}
	}
	return &core.Problem{
		Nodes:    []core.Node{n, n},
		Services: []core.Service{mk(0.5, 0.2), mk(0.7, 0.3), mk(0.3, 0.1), mk(0.4, 0.2)},
	}
}

func TestZeroKnowledgePlacementBalances(t *testing.T) {
	p := testProblem()
	pl := ZeroKnowledgePlacement(p)
	if !pl.Complete() {
		t.Fatal("placement incomplete")
	}
	c0, c1 := len(pl.ServicesOn(0)), len(pl.ServicesOn(1))
	if c0 != 2 || c1 != 2 {
		t.Fatalf("counts = %d,%d, want 2,2", c0, c1)
	}
	if err := pl.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestZeroKnowledgeRespectsRequirements(t *testing.T) {
	p := testProblem()
	// Make node 1 unable to host anything (memory 0).
	p.Nodes[1].Aggregate = vec.Of(1, 0.05)
	p.Nodes[1].Elementary = vec.Of(0.25, 0.05)
	pl := ZeroKnowledgePlacement(p)
	if !pl.Complete() {
		t.Fatal("should still fit all on node 0")
	}
	for _, h := range pl {
		if h != 0 {
			t.Fatalf("service placed on infeasible node: %v", pl)
		}
	}
}

func TestZeroKnowledgeFailsWhenImpossible(t *testing.T) {
	p := testProblem()
	p.Services[0].ReqAgg = vec.Of(0, 9)
	pl := ZeroKnowledgePlacement(p)
	if pl.Complete() {
		t.Fatal("should fail")
	}
}

func TestEvaluatePlacementPerfectEstimates(t *testing.T) {
	p := testProblem()
	pl := ZeroKnowledgePlacement(p)
	// With estimates == truth, ALLOCWEIGHTS achieves the estimate-optimal
	// yields, and ALLOCCAPS matches it.
	w := EvaluatePlacement(p, p, pl, AllocWeights, 0)
	c := EvaluatePlacement(p, p, pl, AllocCaps, 0)
	if math.Abs(w-c) > 1e-3 {
		t.Fatalf("perfect estimates: weights %v vs caps %v should agree", w, c)
	}
}

func TestApplyThreshold(t *testing.T) {
	p := testProblem()
	q := ApplyThreshold(p, 0, 0.6)
	for j := range q.Services {
		if got := q.Services[j].NeedAgg[0]; got < 0.6-1e-12 {
			t.Fatalf("service %d need %v below threshold", j, got)
		}
		if q.Services[j].NeedElem[0] > q.Services[j].NeedAgg[0]+1e-12 {
			t.Fatalf("service %d elementary need exceeds aggregate", j)
		}
	}
	// Above-threshold values unchanged.
	if got := q.Services[1].NeedAgg[0]; math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("0.7 need should be unchanged, got %v", got)
	}
	// Original untouched.
	if p.Services[0].NeedAgg[0] != 0.5 {
		t.Fatal("ApplyThreshold mutated its input")
	}
}

func TestBuildNodeCPU(t *testing.T) {
	p := testProblem()
	est := p.Clone()
	est.Services[0].NeedAgg[0] = 0.9
	pl := core.Placement{0, 1, 0, 1}
	nc := BuildNodeCPU(p, est, pl, 0, 0)
	if len(nc.TrueNeed) != 2 {
		t.Fatalf("node 0 should host 2 services, got %d", len(nc.TrueNeed))
	}
	if nc.TrueNeed[0] != 0.5 || nc.Estimated[0] != 0.9 {
		t.Fatalf("true/est = %v/%v", nc.TrueNeed[0], nc.Estimated[0])
	}
}

// With accurate estimates, ALLOCWEIGHTS must not lose to EQUALWEIGHTS: the
// informed weights reproduce the estimate-optimal shares.
func TestAllocWeightsBeatsEqualWithGoodEstimates(t *testing.T) {
	nc := &NodeCPU{
		Capacity:  1.0,
		Req:       []float64{0, 0},
		Estimated: []float64{1.6, 0.4},
		TrueNeed:  []float64{1.6, 0.4},
	}
	w := nc.MinYield(AllocWeights)
	e := nc.MinYield(EqualWeights)
	if w < e-1e-9 {
		t.Fatalf("weights %v < equal %v despite perfect estimates", w, e)
	}
	// Proportional shares: both services get yield 0.5 under weights; equal
	// weights give the small service everything it needs and starve the big
	// one (alloc 0.6/1.6 = 0.375).
	if math.Abs(w-0.5) > 1e-3 {
		t.Fatalf("weights min yield = %v, want 0.5", w)
	}
	if math.Abs(e-0.375) > 1e-2 {
		t.Fatalf("equal min yield = %v, want ~0.375", e)
	}
}

// EvaluatePlacement takes the minimum across nodes.
func TestEvaluatePlacementMultiNodeMinimum(t *testing.T) {
	p := testProblem()
	// Node 0 gets the two large services, node 1 the two small: node 0 is
	// the bottleneck.
	pl := core.Placement{0, 0, 1, 1}
	y := EvaluatePlacement(p, p, pl, AllocWeights, 0)
	nc0 := BuildNodeCPU(p, p, pl, 0, 0)
	nc1 := BuildNodeCPU(p, p, pl, 1, 0)
	y0, y1 := nc0.MinYield(AllocWeights), nc1.MinYield(AllocWeights)
	want := math.Min(y0, y1)
	if math.Abs(y-want) > 1e-12 {
		t.Fatalf("EvaluatePlacement = %v, want min(%v,%v)", y, y0, y1)
	}
}
