// Package sched models CPU allocation to co-located services when the
// scheduler's estimates of CPU needs may be wrong (paper §6). It implements
// the iterative work-conserving proportional-share redistribution, the three
// allocation policies ALLOCCAPS, ALLOCWEIGHTS and EQUALWEIGHTS, the
// zero-knowledge baseline placement, and the minimum-threshold mitigation
// strategy for bounded estimate errors.
package sched

import (
	"fmt"
	"math"

	"vmalloc/internal/core"
)

// ShareEpsilon is the smallest CPU allocation considered by the iterative
// redistribution (paper uses 0.0001 to avoid infinite recursion).
const ShareEpsilon = 1e-4

// Policy selects how CPU is divided among the services of one node.
type Policy int

const (
	// AllocCaps assigns hard utilization caps proportional to the
	// estimate-optimal allocation; unused capacity is wasted.
	AllocCaps Policy = iota
	// AllocWeights feeds the estimate-optimal allocations as weights to a
	// work-conserving proportional-share scheduler.
	AllocWeights
	// EqualWeights gives every service the same weight under the
	// work-conserving scheduler, using no estimate information.
	EqualWeights
)

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case AllocCaps:
		return "ALLOCCAPS"
	case AllocWeights:
		return "ALLOCWEIGHTS"
	case EqualWeights:
		return "EQUALWEIGHTS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// WaterFill distributes capacity among services in proportion to weights,
// work-conservingly: any share beyond a service's demand is pooled and
// redistributed among the still-unsatisfied services by weight, until all
// are satisfied or the capacity is exhausted. It returns the allocation per
// service. Zero-weight services receive capacity only after every positive-
// weight service is satisfied (they share the leftovers equally).
func WaterFill(capacity float64, weights, demands []float64) []float64 {
	n := len(demands)
	if len(weights) != n {
		panic("sched: weights/demands length mismatch")
	}
	alloc := make([]float64, n)
	active := make([]bool, n)
	nActive := 0
	for j := 0; j < n; j++ {
		if demands[j] > 0 && weights[j] > 0 {
			active[j] = true
			nActive++
		}
	}
	pool := capacity
	for pool > ShareEpsilon && nActive > 0 {
		totalW := 0.0
		for j := 0; j < n; j++ {
			if active[j] {
				totalW += weights[j]
			}
		}
		used := 0.0
		satisfied := 0
		grant := pool
		for j := 0; j < n; j++ {
			if !active[j] {
				continue
			}
			give := grant * weights[j] / totalW
			rem := demands[j] - alloc[j]
			// Grant at most the proportional share: granting the full
			// remainder when give is within ShareEpsilon below it would
			// overdraw the pool and let the total exceed the capacity.
			take := math.Min(give, rem)
			alloc[j] += take
			used += take
			if give >= rem-ShareEpsilon {
				active[j] = false
				nActive--
				satisfied++
			}
		}
		pool -= used
		if satisfied == 0 {
			break // everyone took a proportional share; pool is spent
		}
	}
	// Leftover capacity flows to zero-weight services with demand, equally.
	if pool > ShareEpsilon {
		var zw []int
		for j := 0; j < n; j++ {
			if weights[j] <= 0 && demands[j] > alloc[j] {
				zw = append(zw, j)
			}
		}
		for len(zw) > 0 && pool > ShareEpsilon {
			share := pool / float64(len(zw))
			var next []int
			for _, j := range zw {
				rem := demands[j] - alloc[j]
				take := math.Min(share, rem)
				alloc[j] += take
				pool -= take
				if share < rem-ShareEpsilon {
					next = append(next, j)
				}
			}
			if len(next) == len(zw) {
				break
			}
			zw = next
		}
	}
	return alloc
}

// NodeCPU captures the CPU picture of one node for the error model: the
// aggregate CPU capacity, and per hosted service the aggregate CPU
// requirement, the true aggregate CPU need, and the scheduler's estimate.
type NodeCPU struct {
	Capacity  float64
	Req       []float64
	TrueNeed  []float64
	Estimated []float64
}

// EstimateOptimalYield returns the uniform yield that maximizes the minimum
// yield on the node according to the estimates: min(1, freeCPU/Σestimates).
func (nc *NodeCPU) EstimateOptimalYield() float64 {
	sumReq, sumEst := 0.0, 0.0
	for i := range nc.Req {
		sumReq += nc.Req[i]
		sumEst += nc.Estimated[i]
	}
	free := nc.Capacity - sumReq
	if free <= 0 {
		return 0
	}
	if sumEst <= 0 {
		return 1
	}
	return math.Min(1, free/sumEst)
}

// Yields computes each service's achieved yield on the node under the given
// policy. A yield is (allocation beyond requirement)/true need, clamped to
// [0,1]; services with zero true need have yield 1 by convention.
func (nc *NodeCPU) Yields(policy Policy) []float64 {
	n := len(nc.TrueNeed)
	yields := make([]float64, n)
	yStar := nc.EstimateOptimalYield()

	sumReq := 0.0
	for i := range nc.Req {
		sumReq += nc.Req[i]
	}
	free := math.Max(0, nc.Capacity-sumReq)

	switch policy {
	case AllocCaps:
		for j := 0; j < n; j++ {
			cap := yStar * nc.Estimated[j] // allocation beyond the requirement
			got := math.Min(cap, nc.TrueNeed[j])
			yields[j] = yieldOf(got, nc.TrueNeed[j])
		}
	case AllocWeights, EqualWeights:
		weights := make([]float64, n)
		for j := 0; j < n; j++ {
			if policy == EqualWeights {
				weights[j] = 1
			} else {
				// The estimate-optimal allocation acts as the weight.
				weights[j] = nc.Req[j] + yStar*nc.Estimated[j]
				if weights[j] <= 0 {
					// A service estimated to need nothing still competes
					// with a minimal weight, mirroring the epsilon floor of
					// the iterative algorithm.
					weights[j] = ShareEpsilon
				}
			}
		}
		alloc := WaterFill(free, weights, nc.TrueNeed)
		for j := 0; j < n; j++ {
			yields[j] = yieldOf(alloc[j], nc.TrueNeed[j])
		}
	default:
		panic("sched: unknown policy")
	}
	return yields
}

func yieldOf(got, need float64) float64 {
	if need <= 0 {
		return 1
	}
	return math.Max(0, math.Min(1, got/need))
}

// MinYield returns the minimum over Yields(policy), or 1 for an empty node.
func (nc *NodeCPU) MinYield(policy Policy) float64 {
	min := 1.0
	for _, y := range nc.Yields(policy) {
		if y < min {
			min = y
		}
	}
	return min
}

// BuildNodeCPU extracts the CPU picture of node h for placement pl, taking
// requirements and true needs from trueP and estimated needs from estP.
// cpuDim selects the CPU dimension index.
func BuildNodeCPU(trueP, estP *core.Problem, pl core.Placement, h, cpuDim int) *NodeCPU {
	nc := &NodeCPU{Capacity: trueP.Nodes[h].Aggregate[cpuDim]}
	for j, node := range pl {
		if node != h {
			continue
		}
		nc.Req = append(nc.Req, trueP.Services[j].ReqAgg[cpuDim])
		nc.TrueNeed = append(nc.TrueNeed, trueP.Services[j].NeedAgg[cpuDim])
		nc.Estimated = append(nc.Estimated, estP.Services[j].NeedAgg[cpuDim])
	}
	return nc
}

// EvaluatePlacement computes the minimum achieved yield over all services
// when the placement pl (computed from estP's estimates) runs against the
// true needs in trueP under the given policy.
func EvaluatePlacement(trueP, estP *core.Problem, pl core.Placement, policy Policy, cpuDim int) float64 {
	min := 1.0
	for h := 0; h < trueP.NumNodes(); h++ {
		nc := BuildNodeCPU(trueP, estP, pl, h, cpuDim)
		if len(nc.TrueNeed) == 0 {
			continue
		}
		if y := nc.MinYield(policy); y < min {
			min = y
		}
	}
	return min
}

// ZeroKnowledgePlacement spreads services as evenly as possible over the
// nodes ("scheduling in the dark"): each service goes to the feasible node
// (requirements fit) currently hosting the fewest services. It returns an
// incomplete placement if some service fits nowhere.
func ZeroKnowledgePlacement(p *core.Problem) core.Placement {
	pl := core.NewPlacement(p.NumServices())
	counts := make([]int, p.NumNodes())
	reqLoads := make([][]float64, p.NumNodes())
	d := p.Dim()
	for h := range reqLoads {
		reqLoads[h] = make([]float64, d)
	}
	for j := range p.Services {
		s := &p.Services[j]
		best := -1
		for h := 0; h < p.NumNodes(); h++ {
			ok := true
			for dd := 0; dd < d; dd++ {
				if s.ReqElem[dd] > p.Nodes[h].Elementary[dd]+core.DefaultEpsilon ||
					reqLoads[h][dd]+s.ReqAgg[dd] > p.Nodes[h].Aggregate[dd]+core.DefaultEpsilon {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if best == -1 || counts[h] < counts[best] {
				best = h
			}
		}
		if best == -1 {
			return pl
		}
		pl[j] = best
		counts[best]++
		for dd := 0; dd < d; dd++ {
			reqLoads[best][dd] += s.ReqAgg[dd]
		}
	}
	return pl
}

// ApplyThreshold returns a copy of estP in which every service's estimated
// aggregate CPU need is rounded up to at least threshold; elementary CPU
// needs are scaled to preserve their proportion to the aggregate (paper
// §6.2). Estimates above the threshold are unchanged.
func ApplyThreshold(estP *core.Problem, cpuDim int, threshold float64) *core.Problem {
	q := estP.Clone()
	for j := range q.Services {
		s := &q.Services[j]
		old := s.NeedAgg[cpuDim]
		if old >= threshold {
			continue
		}
		s.NeedAgg[cpuDim] = threshold
		if old > 0 {
			s.NeedElem[cpuDim] *= threshold / old
			if s.NeedElem[cpuDim] > threshold {
				s.NeedElem[cpuDim] = threshold
			}
		} else {
			s.NeedElem[cpuDim] = threshold
		}
		// Elementary needs can never exceed what a single element can use.
		if s.NeedElem[cpuDim] > s.NeedAgg[cpuDim] {
			s.NeedElem[cpuDim] = s.NeedAgg[cpuDim]
		}
	}
	return q
}

// CompetitiveLowerBound returns the worst-case performance ratio of
// EQUALWEIGHTS proven in Theorem 1: (2J-1)/J² for J services on a single
// node with a single resource.
func CompetitiveLowerBound(j int) float64 {
	if j <= 0 {
		return 0
	}
	J := float64(j)
	return (2*J - 1) / (J * J)
}
