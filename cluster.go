package vmalloc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"vmalloc/internal/engine"
	"vmalloc/internal/obs"
	"vmalloc/internal/vec"
)

// ErrUnknownService marks operations addressing a service id that is not
// live; match with errors.Is.
var ErrUnknownService = errors.New("no live service")

// Cluster is the persistent online allocation engine: a long-lived view of a
// hosting platform whose services arrive, depart and change needs over time,
// re-solved epoch by epoch without rebuilding solver state. It is the public
// face of the §8 "dynamic platform" future work — the same engine that backs
// the discrete-event simulator — and keeps, across epochs:
//
//   - the live services in a slab with O(1) admission and departure,
//   - per-node requirement/need loads maintained incrementally,
//   - the true and estimated problem views in recycled backing arrays, and
//   - warm solver arenas (one per worker under Parallel) plus, with
//     UseLPBound, the LP warm-start basis of the previous epoch.
//
// Sequential and parallel reallocation produce identical placements for the
// same cluster history (the parallel sweep keeps the lowest-index success).
// A Cluster is not safe for concurrent use.
type Cluster struct {
	eng  *engine.Engine
	hook func(*ClusterEvent)
}

// ClusterOptions tunes a Cluster. The zero value (nil pointer) selects the
// sequential METAHVPLIGHT engine at the paper's tolerance.
type ClusterOptions struct {
	// CPUDim is the resource dimension holding CPU needs (and receiving the
	// mitigation threshold). Generated workloads use 0.
	CPUDim int
	// Tolerance is the yield binary-search tolerance; <= 0 selects the
	// paper's 1e-4.
	Tolerance float64
	// Threshold is the initial §6.2 mitigation threshold applied to
	// estimated CPU needs at reallocation (see SetThreshold).
	Threshold float64
	// Placer overrides the built-in meta placer (it receives the estimated,
	// thresholded view, valid only during the call).
	Placer func(p *Problem) *Result
	// Parallel races the strategy roster across Workers goroutines with
	// results identical to the sequential sweep.
	Parallel bool
	// Workers is the parallel worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// UseLPBound brackets the binary search with the sparse LP relaxation
	// bound, warm-started from the previous epoch's basis. Worthwhile only
	// when packing dominates the epoch (large rosters, tight tolerances).
	UseLPBound bool
}

// ClusterEpoch reports one Reallocate or Repair epoch.
type ClusterEpoch struct {
	// Result is the solve outcome; Result.Placement is aligned with IDs. On
	// !Result.Solved the previous placement was kept.
	Result *Result
	// IDs are the live service ids in view order (ascending admission
	// order).
	IDs []int
	// Migrations counts already-placed services that changed node.
	Migrations int
	// Stats carries the epoch's solver telemetry: solve wall time, the
	// solver-tier work counters, and (for sharded clusters) the per-shard
	// breakdown.
	Stats *EpochStats
}

// EpochStats is the observability payload of one epoch: solve wall time,
// aggregated solver-tier counters and the per-shard breakdown (alias of
// internal/obs.EpochStats, the dependency-free observability seam).
type EpochStats = obs.EpochStats

// SolverStats aggregates the solver tier's per-epoch work counters:
// presolve reductions, simplex iterations/refactorizations, warm-vs-cold
// starts, branch-and-bound nodes and vector-packing attempts (alias of
// internal/obs.SolverStats).
type SolverStats = obs.SolverStats

// NewCluster returns an empty cluster over the given nodes.
func NewCluster(nodes []Node, opts *ClusterOptions) (*Cluster, error) {
	if opts == nil {
		opts = &ClusterOptions{}
	}
	eng, err := engine.New(engine.Config{
		Nodes:      nodes,
		CPUDim:     opts.CPUDim,
		Tol:        opts.Tolerance,
		Placer:     engine.Placer(opts.Placer),
		Parallel:   opts.Parallel,
		Workers:    opts.Workers,
		UseLPBound: opts.UseLPBound,
		Now:        time.Now,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{eng: eng}
	if err := c.SetThreshold(opts.Threshold); err != nil {
		return nil, err
	}
	return c, nil
}

// validateService mirrors the structural checks Problem.Validate applies,
// so malformed input surfaces as an error at the public boundary instead of
// a panic (or silent NaN poisoning of the incremental loads) deep inside the
// engine.
func (c *Cluster) validateService(kind string, svc Service) error {
	return validateServiceVecs(c.eng.Dim(), kind, svc)
}

// Add admits a service whose CPU-need estimate is exact. Admission is the
// engine's best-fit test on rigid requirements against the incrementally
// maintained node loads; ok is false when no node can host the service, in
// which case the cluster is unchanged. A non-nil error means svc is
// structurally invalid (wrong dimensionality, negative/NaN entries) and
// nothing was attempted.
func (c *Cluster) Add(svc Service) (id int, ok bool, err error) {
	return c.AddWithEstimate(svc, svc)
}

// AddWithEstimate admits a service whose scheduler-visible needs (estSvc)
// differ from its true needs (trueSvc); the two normally share
// requirements (only needs are subject to the §6 estimate-error model).
func (c *Cluster) AddWithEstimate(trueSvc, estSvc Service) (id int, ok bool, err error) {
	if err := c.validateService("true", trueSvc); err != nil {
		return 0, false, err
	}
	if err := c.validateService("estimated", estSvc); err != nil {
		return 0, false, err
	}
	id, node, ok := c.eng.Add(trueSvc, estSvc)
	if ok && c.hook != nil {
		ts, es, _ := c.eng.Service(id)
		c.hook(&ClusterEvent{Op: ClusterOpAdd, ID: id, Node: node, TrueSvc: &ts, EstSvc: &es})
	}
	return id, ok, nil
}

// BatchEntry is one service of a bulk admission: the true descriptor and the
// scheduler-visible estimate (pass the same service twice when the estimate
// is exact).
type BatchEntry struct {
	True, Est Service
}

// BatchResult is the per-entry outcome of a bulk admission. Exactly one of
// three states holds: Admitted (ID and Node are valid), rejected (Admitted
// false, Err nil — no node could host the service), or invalid (Err non-nil —
// the entry failed structural validation and was skipped without touching the
// cluster).
type BatchResult struct {
	ID       int
	Node     int
	Admitted bool
	Err      error
}

// AddBatch admits entries in order through the same admission path as
// AddWithEstimate — each admission sees the capacity left by the previous
// one, so the resulting ids, placements and hook events are exactly those of
// len(entries) sequential calls. Entries failing validation are reported
// per-entry and skipped; they never abort the rest of the batch.
func (c *Cluster) AddBatch(entries []BatchEntry) []BatchResult {
	out := make([]BatchResult, len(entries))
	for i := range entries {
		id, ok, err := c.AddWithEstimate(entries[i].True, entries[i].Est)
		if err != nil {
			out[i] = BatchResult{Node: Unplaced, Err: err}
			continue
		}
		if !ok {
			out[i] = BatchResult{Node: Unplaced}
			continue
		}
		node, _ := c.Node(id)
		out[i] = BatchResult{ID: id, Node: node, Admitted: true}
	}
	return out
}

// Remove departs a live service in O(1). It reports whether id was live.
func (c *Cluster) Remove(id int) bool {
	ok := c.eng.Remove(id)
	if ok && c.hook != nil {
		c.hook(&ClusterEvent{Op: ClusterOpRemove, ID: id})
	}
	return ok
}

// UpdateNeeds replaces the fluid needs (true and estimated) of a live
// service; rigid requirements cannot change in place. It returns an error
// for malformed vectors or an unknown id.
func (c *Cluster) UpdateNeeds(id int, trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg Vec) error {
	d := c.eng.Dim()
	for _, vv := range []struct {
		name string
		v    Vec
	}{
		{"true elementary need", trueNeedElem},
		{"true aggregate need", trueNeedAgg},
		{"estimated elementary need", estNeedElem},
		{"estimated aggregate need", estNeedAgg},
	} {
		if err := validateVec(d, vv.name, vv.v); err != nil {
			return err
		}
	}
	if !c.eng.UpdateNeeds(id, vec.Vec(trueNeedElem), vec.Vec(trueNeedAgg),
		vec.Vec(estNeedElem), vec.Vec(estNeedAgg)) {
		return fmt.Errorf("vmalloc: %w with id %d", ErrUnknownService, id)
	}
	if c.hook != nil {
		c.hook(&ClusterEvent{Op: ClusterOpUpdateNeeds, ID: id,
			Needs: [4]Vec{trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg}})
	}
	return nil
}

// Len returns the number of live services.
func (c *Cluster) Len() int { return c.eng.Len() }

// Node returns the node currently hosting id, or false when id is not live.
func (c *Cluster) Node(id int) (int, bool) { return c.eng.Node(id) }

// SetThreshold sets the §6.2 mitigation threshold applied to estimated CPU
// needs when views are built for the next epoch (0 disables). Negative or
// non-finite values are rejected — a poisoned threshold would journal and
// snapshot cleanly here but fail state validation at recovery, bricking the
// durable tier's directory.
func (c *Cluster) SetThreshold(th float64) error {
	if th < 0 || math.IsNaN(th) || math.IsInf(th, 0) {
		return fmt.Errorf("vmalloc: threshold %g invalid (want a finite value >= 0)", th)
	}
	c.eng.SetThreshold(th)
	if c.hook != nil {
		c.hook(&ClusterEvent{Op: ClusterOpSetThreshold, Threshold: th})
	}
	return nil
}

// Reallocate runs one full reallocation epoch with the configured placer
// over the estimated view, applying the new placement and counting
// migrations. On failure the previous placement is kept.
func (c *Cluster) Reallocate() *ClusterEpoch { return c.ReallocateCtx(context.Background()) }

// ReallocateCtx is Reallocate under a tracing context: when ctx carries an
// obs span the epoch's solve runs under a child span. The placement
// trajectory is identical to Reallocate.
func (c *Cluster) ReallocateCtx(ctx context.Context) *ClusterEpoch {
	sp := obs.SpanFromContext(ctx).StartChild("epoch")
	ce := clusterEpoch(c.eng.Reallocate())
	sp.SetInt("services", int64(len(ce.IDs)))
	sp.SetInt("migrations", int64(ce.Migrations))
	sp.End()
	c.emitEpoch(ce, false, 0)
	return ce
}

// Repair runs one migration-bounded incremental epoch: still-feasible
// services stay put, new or displaced services are re-placed by best fit,
// and at most budget previously-placed services move (negative =
// unlimited), followed by budget-aware local search.
func (c *Cluster) Repair(budget int) *ClusterEpoch {
	return c.RepairCtx(context.Background(), budget)
}

// RepairCtx is Repair under a tracing context; see ReallocateCtx.
func (c *Cluster) RepairCtx(ctx context.Context, budget int) *ClusterEpoch {
	sp := obs.SpanFromContext(ctx).StartChild("epoch")
	ce := clusterEpoch(c.eng.Repair(budget))
	sp.SetInt("services", int64(len(ce.IDs)))
	sp.SetInt("migrations", int64(ce.Migrations))
	sp.End()
	c.emitEpoch(ce, true, budget)
	return ce
}

// emitEpoch reports an applied (solved, non-empty) epoch through the hook.
// Failed epochs change no state and are not journaled.
func (c *Cluster) emitEpoch(ce *ClusterEpoch, repair bool, budget int) {
	if c.hook == nil || !ce.Result.Solved || len(ce.IDs) == 0 {
		return
	}
	c.hook(&ClusterEvent{
		Op:         ClusterOpEpoch,
		IDs:        ce.IDs,
		Placement:  ce.Result.Placement,
		Repair:     repair,
		Budget:     budget,
		Migrations: ce.Migrations,
		MinYield:   ce.Result.MinYield,
	})
}

// Snapshot returns a detached copy of the cluster: the true problem view,
// the current placement and the live service ids, aligned index by index.
func (c *Cluster) Snapshot() (*Problem, Placement, []int) { return c.eng.Snapshot() }

// MinYield evaluates the achieved minimum yield of the current placement
// when the true needs run against the estimated (thresholded) view under the
// given scheduling policy — the §6 error model. Returns 1 for an empty
// cluster.
func (c *Cluster) MinYield(policy SchedPolicy) float64 {
	return c.eng.EvaluateMinYield(policy)
}

func clusterEpoch(rep *engine.EpochReport) *ClusterEpoch {
	return &ClusterEpoch{
		Result:     rep.Result,
		IDs:        append([]int(nil), rep.IDs...),
		Migrations: rep.Migrations,
		Stats:      &EpochStats{SolveNs: rep.SolveNs, Solver: rep.Solver},
	}
}
