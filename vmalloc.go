// Package vmalloc is a Go implementation of the virtual-machine resource
// allocation system of Casanova, Stillwell and Vivien, "Virtual Machine
// Resource Allocation for Service Hosting on Heterogeneous Distributed
// Platforms" (IPDPS 2012 / INRIA RR-7772).
//
// The library places services (VM instances) with rigid requirements and
// fluid needs onto heterogeneous nodes so as to maximize the minimum yield,
// the paper's fairness-plus-performance objective. It provides:
//
//   - the problem model with elementary/aggregate capacity vectors
//     (core types re-exported here);
//   - the MILP formulation with a pure-Go simplex and branch-and-bound
//     (exact solutions for small instances, rational upper bounds for all);
//   - the heuristic roster of the paper: randomized rounding (RRND, RRNZ),
//     49 greedy algorithms and METAGREEDY, homogeneous vector packing and
//     METAVP, heterogeneous vector packing with METAHVP and METAHVPLIGHT;
//   - the §6 machinery for erroneous CPU-need estimates: work-conserving
//     proportional-share scheduling, ALLOCCAPS/ALLOCWEIGHTS/EQUALWEIGHTS,
//     and the minimum-threshold mitigation strategy;
//   - workload generation following §4 and the experiment harness that
//     regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	p := &vmalloc.Problem{ ... }
//	res, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, p)
//	if err == nil && res.Solved {
//	    fmt.Println(res.MinYield, res.Placement)
//	}
package vmalloc

import (
	"vmalloc/internal/core"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

// Re-exported model types. See the internal/core documentation for details.
type (
	// Problem is a complete allocation instance: nodes plus services.
	Problem = core.Problem
	// Node is one physical host with elementary and aggregate capacities.
	Node = core.Node
	// Service is one hosted VM with requirement and need vector pairs.
	Service = core.Service
	// Placement maps each service to a node index (or Unplaced).
	Placement = core.Placement
	// Result is an algorithm outcome: placement, per-service yields, and
	// the achieved minimum yield.
	Result = core.Result
	// Vec is a resource vector (one entry per dimension).
	Vec = vec.Vec
	// Scenario describes one generated instance (paper §4 parameters).
	Scenario = workload.Scenario
)

// Unplaced marks a service without a node in a Placement.
const Unplaced = core.Unplaced

// Of builds a resource vector from values (CPU first by convention).
func Of(vals ...float64) Vec { return vec.Of(vals...) }

// Generate builds the synthetic instance for a scenario using the §4
// distributions (Google-like marginals, truncated-normal capacities).
func Generate(s Scenario) *Problem { return workload.Generate(s) }

// EvaluatePlacement computes the result implied by a fixed placement: every
// node grants its services the node's maximum uniform yield.
func EvaluatePlacement(p *Problem, pl Placement) *Result {
	return core.EvaluatePlacement(p, pl)
}

// MaxUniformYield returns the largest common yield the given services can
// have on node h, or a negative value if their requirements do not fit.
func MaxUniformYield(p *Problem, h int, services []int) float64 {
	return core.MaxUniformYield(p, h, services)
}

// LoadProblem reads and validates a problem from a JSON file.
func LoadProblem(path string) (*Problem, error) { return core.LoadFile(path) }
