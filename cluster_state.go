package vmalloc

import (
	"fmt"
	"math"
	"time"

	"vmalloc/internal/engine"
)

// ClusterOp identifies the kind of mutation a ClusterEvent reports.
type ClusterOp uint8

const (
	// ClusterOpAdd is a successful admission.
	ClusterOpAdd ClusterOp = iota + 1
	// ClusterOpRemove is a departure.
	ClusterOpRemove
	// ClusterOpUpdateNeeds replaced a live service's fluid needs.
	ClusterOpUpdateNeeds
	// ClusterOpSetThreshold changed the mitigation threshold.
	ClusterOpSetThreshold
	// ClusterOpEpoch applied a solved Reallocate or Repair epoch.
	ClusterOpEpoch
	// ClusterOpMoveIn installed a cross-shard rebalanced service (sharded
	// clusters only). It replays like an admission; the move generation in
	// ShardEvent.Gen lets a durable tier reconcile moves torn across WALs.
	ClusterOpMoveIn
	// ClusterOpMoveOut departed a cross-shard rebalanced service (sharded
	// clusters only). It replays like a removal.
	ClusterOpMoveOut
)

// ClusterEvent describes one applied cluster mutation, delivered to the
// event hook after the in-memory state has changed. It carries the decision,
// not the request: an admission event names the id and node the engine
// chose, an epoch event the placement that was applied — exactly what a
// write-ahead log needs to replay outcomes without re-running the solver.
//
// Slice and pointer fields may alias engine-owned buffers and are valid only
// for the duration of the hook call; consumers must copy (or encode) what
// they keep.
type ClusterEvent struct {
	Op ClusterOp

	// ID names the service (ClusterOpAdd, ClusterOpRemove,
	// ClusterOpUpdateNeeds).
	ID int
	// Node is the admission placement (ClusterOpAdd).
	Node int
	// TrueSvc and EstSvc are the admitted descriptors (ClusterOpAdd).
	TrueSvc, EstSvc *Service
	// Needs are the new true elem/agg and estimated elem/agg need vectors
	// (ClusterOpUpdateNeeds).
	Needs [4]Vec
	// Threshold is the new mitigation threshold (ClusterOpSetThreshold).
	Threshold float64
	// Epoch payload (ClusterOpEpoch): the live ids in view order and the
	// placement applied to them, plus whether this was a bounded Repair.
	IDs        []int
	Placement  Placement
	Repair     bool
	Budget     int
	Migrations int
	MinYield   float64
}

// SetHook installs fn as the cluster's mutation observer (nil uninstalls).
// The hook fires synchronously after every applied state change — rejected
// admissions, failed epochs and no-op removals are not reported — and in
// application order, which makes it the seam a durability layer journals
// through without the engine knowing about disks. The hook must not call
// back into the cluster.
func (c *Cluster) SetHook(fn func(*ClusterEvent)) { c.hook = fn }

// ClusterServiceState is the durable description of one live service.
type ClusterServiceState = engine.ServiceState

// ClusterState is the complete durable state of a Cluster: the platform, the
// live services with their identities and placements, the mitigation
// threshold, the next fresh id and (optionally) the incrementally maintained
// per-node load vectors. It is the snapshot payload of the durable
// allocation service and the interchange format of `vmalloc -state-in/
// -state-out`; its JSON form is stable (canonical field order, round-trip
// exact floats).
type ClusterState struct {
	Nodes []Node `json:"nodes"`
	engine.State
}

// Validate checks structural consistency of a decoded state: node and
// service vector dimensionalities agree, all values are finite and
// non-negative, ids are strictly ascending, placements are in range, and
// NextID is above every live id.
func (st *ClusterState) Validate() error {
	if len(st.Nodes) == 0 {
		return fmt.Errorf("vmalloc: state has no nodes")
	}
	d := st.Nodes[0].Aggregate.Dim()
	if d == 0 {
		return fmt.Errorf("vmalloc: state node 0 has no dimensions")
	}
	checkVec := func(kind string, v Vec) error {
		if v.Dim() != d {
			return fmt.Errorf("vmalloc: state %s has %d dimensions, want %d", kind, v.Dim(), d)
		}
		for dd, x := range v {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("vmalloc: state %s has invalid value %g in dimension %d", kind, x, dd)
			}
		}
		return nil
	}
	for h, n := range st.Nodes {
		if err := checkVec(fmt.Sprintf("node %d elementary capacity", h), n.Elementary); err != nil {
			return err
		}
		if err := checkVec(fmt.Sprintf("node %d aggregate capacity", h), n.Aggregate); err != nil {
			return err
		}
	}
	prev := -1
	for i := range st.Services {
		ss := &st.Services[i]
		if ss.ID <= prev {
			return fmt.Errorf("vmalloc: state service ids not strictly ascending at index %d", i)
		}
		prev = ss.ID
		if ss.Node != Unplaced && (ss.Node < 0 || ss.Node >= len(st.Nodes)) {
			return fmt.Errorf("vmalloc: state service %d placed on invalid node %d", ss.ID, ss.Node)
		}
		for _, vv := range []struct {
			kind string
			v    Vec
		}{
			{"true elementary requirement", ss.True.ReqElem},
			{"true aggregate requirement", ss.True.ReqAgg},
			{"true elementary need", ss.True.NeedElem},
			{"true aggregate need", ss.True.NeedAgg},
			{"estimated elementary requirement", ss.Est.ReqElem},
			{"estimated aggregate requirement", ss.Est.ReqAgg},
			{"estimated elementary need", ss.Est.NeedElem},
			{"estimated aggregate need", ss.Est.NeedAgg},
		} {
			if err := checkVec(fmt.Sprintf("service %d %s", ss.ID, vv.kind), vv.v); err != nil {
				return err
			}
		}
		if ss.ID >= st.NextID {
			return fmt.Errorf("vmalloc: state next id %d not above live id %d", st.NextID, ss.ID)
		}
	}
	if st.ReqLoads != nil || st.NeedLoads != nil {
		if len(st.ReqLoads) != len(st.Nodes) || len(st.NeedLoads) != len(st.Nodes) {
			return fmt.Errorf("vmalloc: state has %d/%d load vectors, want %d",
				len(st.ReqLoads), len(st.NeedLoads), len(st.Nodes))
		}
		for h := range st.ReqLoads {
			if err := checkVec(fmt.Sprintf("node %d requirement load", h), st.ReqLoads[h]); err != nil {
				return err
			}
			if err := checkVec(fmt.Sprintf("node %d need load", h), st.NeedLoads[h]); err != nil {
				return err
			}
		}
	}
	if th := st.Threshold; th < 0 || math.IsNaN(th) || math.IsInf(th, 0) {
		return fmt.Errorf("vmalloc: state threshold %g invalid", th)
	}
	return nil
}

// State returns a deep copy of the cluster's durable state, services in
// ascending id order.
func (c *Cluster) State() *ClusterState {
	nodes := make([]Node, len(c.eng.Nodes()))
	for h, n := range c.eng.Nodes() {
		nodes[h] = Node{Name: n.Name, Elementary: n.Elementary.Clone(), Aggregate: n.Aggregate.Clone()}
	}
	return &ClusterState{Nodes: nodes, State: *c.eng.State()}
}

// RestoreCluster rebuilds a cluster from a captured state. The platform and
// threshold come from st (opts.Threshold is ignored); solver configuration —
// tolerance, parallelism, LP bound — comes from opts as in NewCluster. The
// restored cluster continues bit-identically to the one that produced st.
func RestoreCluster(st *ClusterState, opts *ClusterOptions) (*Cluster, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &ClusterOptions{}
	}
	eng, err := engine.Restore(engine.Config{
		Nodes:      st.Nodes,
		CPUDim:     opts.CPUDim,
		Tol:        opts.Tolerance,
		Placer:     engine.Placer(opts.Placer),
		Parallel:   opts.Parallel,
		Workers:    opts.Workers,
		UseLPBound: opts.UseLPBound,
		Now:        time.Now,
	}, &st.State)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: eng}, nil
}

// RestoreAdd reinstalls a service with an already-decided id and node —
// the journal-replay counterpart of Add. It skips the admission test (the
// decision was made when the service was first admitted) but applies the
// same load arithmetic as a live admission. No event is emitted.
func (c *Cluster) RestoreAdd(id, node int, trueSvc, estSvc Service) error {
	if err := c.validateService("true", trueSvc); err != nil {
		return err
	}
	if err := c.validateService("estimated", estSvc); err != nil {
		return err
	}
	return c.eng.RestoreAdd(id, node, trueSvc, estSvc)
}

// ApplyPlacement applies an externally decided placement: ids[i] moves to
// pl[i]. The ids must be exactly the live services in ascending order (the
// epoch view order), which is what a journaled epoch record carries. It is
// the journal-replay counterpart of Reallocate/Repair and emits no event.
func (c *Cluster) ApplyPlacement(ids []int, pl Placement) (migrations int, err error) {
	return c.eng.ApplyPlacementByID(ids, pl)
}
