package vmalloc

import (
	"math"
	"testing"
)

// paperFig1 is the Figure 1 example through the public API.
func paperFig1() *Problem {
	return &Problem{
		Nodes: []Node{
			{Name: "A", Elementary: Of(0.8, 1.0), Aggregate: Of(3.2, 1.0)},
			{Name: "B", Elementary: Of(1.0, 0.5), Aggregate: Of(2.0, 0.5)},
		},
		Services: []Service{{
			Name:    "svc",
			ReqElem: Of(0.5, 0.5), ReqAgg: Of(1.0, 0.5),
			NeedElem: Of(0.5, 0.0), NeedAgg: Of(1.0, 0.0),
		}},
	}
}

func TestSolveEveryAlgorithmOnFig1(t *testing.T) {
	for _, name := range Algorithms() {
		res, err := Solve(name, paperFig1(), &Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Solved {
			t.Fatalf("%s: failed on the trivially feasible Figure 1 instance", name)
		}
		if res.MinYield < 0.6-1e-6 {
			t.Fatalf("%s: yield %v below the worst single-node yield", name, res.MinYield)
		}
	}
}

func TestExactAndPackingAgreeOnFig1(t *testing.T) {
	exact, err := Solve(AlgoExact, paperFig1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.MinYield-1.0) > 1e-6 {
		t.Fatalf("exact yield = %v, want 1.0 (node B)", exact.MinYield)
	}
	hvp, err := Solve(AlgoMetaHVP, paperFig1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hvp.MinYield-exact.MinYield) > 1e-3 {
		t.Fatalf("METAHVP %v vs exact %v", hvp.MinYield, exact.MinYield)
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve("NOPE", paperFig1(), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveInvalidProblem(t *testing.T) {
	p := paperFig1()
	p.Services[0].ReqAgg = Of(1.0)
	if _, err := Solve(AlgoMetaHVP, p, nil); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRelaxedUpperBoundDominatesHeuristics(t *testing.T) {
	scn := Scenario{Hosts: 4, Services: 10, COV: 0.5, Slack: 0.5, Seed: 3}
	p := Generate(scn)
	ub, err := RelaxedUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(AlgoMetaHVPLight, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved && res.MinYield > ub+1e-6 {
		t.Fatalf("heuristic %v exceeds relaxation bound %v", res.MinYield, ub)
	}
}

func TestGenerateAndSolvePipeline(t *testing.T) {
	p := Generate(Scenario{Hosts: 8, Services: 24, COV: 0.7, Slack: 0.4, Seed: 11})
	res, err := Solve(AlgoMetaHVPLight, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		if err := res.Placement.Validate(p); err != nil {
			t.Fatal(err)
		}
		if !FeasibleAtYield(p, res.Placement, res.MinYield-1e-6) {
			t.Fatal("reported yield not feasible")
		}
	}
}

func TestParallelOptionMatchesSequentialSuccess(t *testing.T) {
	p := Generate(Scenario{Hosts: 8, Services: 24, COV: 0.7, Slack: 0.4, Seed: 12})
	seq, err := Solve(AlgoMetaHVPLight, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(AlgoMetaHVPLight, p, &Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Solved != par.Solved {
		t.Fatalf("solved mismatch: %v vs %v", seq.Solved, par.Solved)
	}
}

func TestErrorPipeline(t *testing.T) {
	trueP := Generate(Scenario{Hosts: 8, Services: 20, COV: 0.5, Slack: 0.5, Seed: 5})
	est := PerturbCPUNeeds(trueP, 0.05, 99)
	est = ApplyThreshold(est, 0, 0.1)
	res, err := Solve(AlgoMetaHVPLight, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Skip("instance unsolvable at this threshold")
	}
	for _, pol := range []SchedPolicy{PolicyAllocCaps, PolicyAllocWeights, PolicyEqualWeights} {
		y := EvaluateWithErrors(trueP, est, res.Placement, pol, 0)
		if y < 0 || y > 1 {
			t.Fatalf("%v: yield %v", pol, y)
		}
	}
}

func TestZeroKnowledgePlacementPublic(t *testing.T) {
	p := Generate(Scenario{Hosts: 8, Services: 20, COV: 0.5, Slack: 0.5, Seed: 6})
	pl := ZeroKnowledgePlacement(p)
	if !pl.Complete() {
		t.Skip("zero-knowledge could not place; acceptable on hard instances")
	}
	if err := pl.Validate(p); err != nil {
		t.Fatal(err)
	}
}
