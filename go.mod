module vmalloc

go 1.24
