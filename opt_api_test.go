package vmalloc

import (
	"testing"
)

func TestPublicImproveMonotone(t *testing.T) {
	p := Generate(Scenario{Hosts: 6, Services: 18, COV: 0.6, Slack: 0.5, Seed: 3})
	base, err := Solve(AlgoMetaGreedy, p, nil)
	if err != nil || !base.Solved {
		t.Skip("base placement unavailable")
	}
	imp := Improve(p, base.Placement)
	if !imp.Solved {
		t.Fatal("improve lost feasibility")
	}
	if imp.MinYield < base.MinYield-1e-9 {
		t.Fatalf("improve decreased yield: %v -> %v", base.MinYield, imp.MinYield)
	}
}

func TestPublicRepairAndMigrations(t *testing.T) {
	p := Generate(Scenario{Hosts: 6, Services: 18, COV: 0.6, Slack: 0.5, Seed: 4})
	first, err := Solve(AlgoMetaHVPLight, p, nil)
	if err != nil || !first.Solved {
		t.Skip("instance unsolvable")
	}
	// Workload change: three more services arrive.
	q := p.Clone()
	q.Services = append(q.Services, p.Services[0], p.Services[1], p.Services[2])
	res := Repair(q, first.Placement, -1)
	if !res.Solved {
		t.Skip("grown workload unsolvable")
	}
	if err := res.Placement.Validate(q); err != nil {
		t.Fatal(err)
	}
	if m := Migrations(first.Placement, res.Placement); m < 0 {
		t.Fatalf("migrations = %d", m)
	}
	zero := Repair(q, first.Placement, 0)
	if zero.Solved {
		if m := Migrations(first.Placement, zero.Placement); m != 0 {
			t.Fatalf("zero-budget repair migrated %d services", m)
		}
	}
}

func TestPublicMaterialize(t *testing.T) {
	p := paperFig1()
	res, err := Solve(AlgoMetaHVP, p, nil)
	if err != nil || !res.Solved {
		t.Fatal("fig1 must solve")
	}
	al, err := Materialize(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Check(p, 1e-6); err != nil {
		t.Fatal(err)
	}
	u := al.Utilization(p)
	if u[0] <= 0 || u[0] > 1 {
		t.Fatalf("utilization = %v", u)
	}
}
