package vmalloc_test

import (
	"fmt"

	"vmalloc"
)

// ExampleSolve places the paper's Figure 1 service with METAHVPLIGHT: the
// two-core node B supports the full yield of 1.
func ExampleSolve() {
	p := &vmalloc.Problem{
		Nodes: []vmalloc.Node{
			{Name: "A", Elementary: vmalloc.Of(0.8, 1.0), Aggregate: vmalloc.Of(3.2, 1.0)},
			{Name: "B", Elementary: vmalloc.Of(1.0, 0.5), Aggregate: vmalloc.Of(2.0, 0.5)},
		},
		Services: []vmalloc.Service{{
			Name:    "svc",
			ReqElem: vmalloc.Of(0.5, 0.5), ReqAgg: vmalloc.Of(1.0, 0.5),
			NeedElem: vmalloc.Of(0.5, 0.0), NeedAgg: vmalloc.Of(1.0, 0.0),
		}},
	}
	res, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, p, nil)
	if err != nil || !res.Solved {
		fmt.Println("failed")
		return
	}
	fmt.Printf("node %s, yield %.1f\n", p.Nodes[res.Placement[0]].Name, res.MinYield)
	// Output: node B, yield 1.0
}

// ExampleGenerate builds a §4 synthetic instance and reports its shape.
func ExampleGenerate() {
	p := vmalloc.Generate(vmalloc.Scenario{
		Hosts: 4, Services: 10, COV: 0.5, Slack: 0.5, Seed: 1,
	})
	fmt.Println(p.NumNodes(), "nodes,", p.NumServices(), "services")
	// Output: 4 nodes, 10 services
}

// ExampleCluster runs a small online hosting scenario: services are
// admitted into a persistent cluster, reallocated epoch by epoch, and
// departed — the engine keeps its solver state warm between epochs.
func ExampleCluster() {
	nodes := []vmalloc.Node{
		{Elementary: vmalloc.Of(0.5, 1.0), Aggregate: vmalloc.Of(2.0, 1.0)},
		{Elementary: vmalloc.Of(0.5, 1.0), Aggregate: vmalloc.Of(2.0, 1.0)},
	}
	cluster, err := vmalloc.NewCluster(nodes, nil)
	if err != nil {
		fmt.Println(err)
		return
	}

	svc := func(mem, need float64) vmalloc.Service {
		return vmalloc.Service{
			ReqElem: vmalloc.Of(0.05, mem), ReqAgg: vmalloc.Of(0.05, mem),
			NeedElem: vmalloc.Of(need/2, 0), NeedAgg: vmalloc.Of(need, 0),
		}
	}
	var ids []int
	for _, need := range []float64{0.8, 0.6, 0.9, 0.7} {
		if id, ok, _ := cluster.Add(svc(0.2, need)); ok {
			ids = append(ids, id)
		}
	}
	ep := cluster.Reallocate()
	fmt.Printf("epoch 1: %d services, solved=%v, yield %.2f\n",
		len(ep.IDs), ep.Result.Solved, ep.Result.MinYield)

	cluster.Remove(ids[0]) // O(1) departure
	ep = cluster.Reallocate()
	fmt.Printf("epoch 2: %d services, solved=%v, yield %.2f\n",
		len(ep.IDs), ep.Result.Solved, ep.Result.MinYield)
	// Output:
	// epoch 1: 4 services, solved=true, yield 1.00
	// epoch 2: 3 services, solved=true, yield 1.00
}

// ExampleMigrations counts moved services between two placements.
func ExampleMigrations() {
	prev := vmalloc.Placement{0, 1, vmalloc.Unplaced}
	next := vmalloc.Placement{0, 2, 1}
	fmt.Println(vmalloc.Migrations(prev, next))
	// Output: 1
}
