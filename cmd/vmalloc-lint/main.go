// vmalloc-lint is the repo's invariant vettool: five go/analysis-style
// checkers (detrange, noclock, floateq, syncorder, slogonly — see
// docs/analysis.md) compiled into a single binary that speaks cmd/go's
// unitchecker protocol, so it runs as
//
//	go build -o bin/vmalloc-lint ./cmd/vmalloc-lint
//	go vet -vettool=$PWD/bin/vmalloc-lint ./...
//
// The protocol (normally provided by golang.org/x/tools/go/analysis/
// unitchecker) is implemented here directly against the standard library so
// the module stays dependency-free: cmd/go invokes the tool with -V=full to
// fingerprint it for caching, with -flags to discover tool flags, and then
// once per package with a JSON vet.cfg naming the Go files, the import map,
// and the export-data files of every dependency. The tool typechecks the
// package with the gc importer reading that export data, runs the suite, and
// prints findings as file:line:col: message (exit 2) for cmd/go to surface.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"vmalloc/internal/analysis"
	"vmalloc/internal/analysis/lintkit"
)

// vetConfig mirrors the JSON written by cmd/go for each vetted package; the
// field set tracks x/tools' unitchecker.Config (fields this tool ignores are
// still listed so decoding stays strict-compatible across go versions).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: cmd/go validates user flags against
			// this list, so an empty set means `go vet -vettool=...` takes
			// no analyzer options.
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help" || a == "help":
			usage()
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage()
		os.Exit(1)
	}
	if err := run(args[0]); err != nil {
		fmt.Fprintf(os.Stderr, "vmalloc-lint: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "vmalloc-lint: vmalloc invariant suite (run via go vet -vettool)\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n  go build -o bin/vmalloc-lint ./cmd/vmalloc-lint\n  go vet -vettool=$PWD/bin/vmalloc-lint ./...\n\nanalyzers:\n")
	for _, a := range analysis.All {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with `//vmalloc:nondet-ok <reason>` on the flagged\nline, or alone on the line above it. The reason is mandatory.\n")
}

// printVersion emits the `name version ...` line cmd/go fingerprints the
// tool with; hashing the executable means a rebuilt tool invalidates
// cmd/go's vet cache automatically.
func printVersion() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func run(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// cmd/go asks for a facts file ("vetx") for every package, dependencies
	// included, and feeds it to dependents. The suite is strictly
	// intra-package, so the facts are always empty — but the file must
	// exist or cmd/go reports a tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	// A VetxOnly run means "this package is only a dependency; produce
	// facts, not diagnostics". With no facts to compute there is nothing to
	// do — skipping the typecheck here is what keeps `go vet ./...` from
	// re-typechecking the standard library.
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	info := lintkit.NewInfo()
	tconf := types.Config{
		Importer: newExportDataImporter(fset, &cfg),
		Sizes:    types.SizesFor("gc", goarch()),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := analysis.RunVet(fset, files, pkg, info, pkgPathOf(cfg.ImportPath))
	if err != nil {
		return err
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
		}
		os.Exit(2)
	}
	return nil
}

// pkgPathOf strips cmd/go's test-variant suffixes so package-scoped rules
// treat "vmalloc/internal/engine [vmalloc/internal/engine.test]" (the
// package recompiled with its test files) like the package itself, and the
// "_test" external test package like a sibling of the package under test.
func pkgPathOf(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return strings.TrimSuffix(importPath, "_test")
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// exportDataImporter resolves imports from the export-data files cmd/go
// listed in the vet config, via the standard library's gc importer. One
// shared delegate serves every import of the run: the gc importer keeps all
// loaded packages in one internal map, which is what preserves type identity
// when two dependencies both pull in, say, os.File.
type exportDataImporter struct {
	delegate types.ImporterFrom
	dir      string
}

func newExportDataImporter(fset *token.FileSet, cfg *vetConfig) exportDataImporter {
	delegate := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	return exportDataImporter{delegate: delegate.(types.ImporterFrom), dir: cfg.Dir}
}

func (ei exportDataImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, ei.dir, 0)
}

func (ei exportDataImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.delegate.ImportFrom(path, dir, mode)
}
