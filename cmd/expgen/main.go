// Command expgen generates synthetic problem instances following the
// paper's §4 methodology and writes them as JSON for cmd/vmalloc.
//
// Usage:
//
//	expgen -hosts 64 -services 500 -cov 0.5 -slack 0.3 -seed 1 -o inst.json
package main

import (
	"flag"
	"fmt"
	"os"

	"vmalloc"
	"vmalloc/internal/trace"
	"vmalloc/internal/workload"
)

func main() {
	var (
		hosts     = flag.Int("hosts", 64, "number of nodes")
		services  = flag.Int("services", 100, "number of services")
		cov       = flag.Float64("cov", 0.5, "coefficient of variation of node capacities")
		slack     = flag.Float64("slack", 0.4, "target memory slack in (0,1)")
		seed      = flag.Int64("seed", 1, "generator seed")
		mode      = flag.String("mode", "both", "heterogeneity: both|cpu-homogeneous|mem-homogeneous")
		out       = flag.String("o", "", "output file (default stdout)")
		fromTrace = flag.String("trace", "", "derive service marginals from a task-event trace CSV")
		makeTrace = flag.Int("make-trace", 0, "instead of a problem, synthesize a trace with N tasks")
	)
	flag.Parse()

	if *makeTrace > 0 {
		recs := trace.Synthesize(*makeTrace, *seed)
		if *out == "" {
			if err := trace.Write(os.Stdout, recs); err != nil {
				fatal(err)
			}
			return
		}
		if err := trace.WriteFile(*out, recs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "expgen: wrote %d trace records to %s\n", len(recs), *out)
		return
	}

	var m workload.HeterogeneityMode
	switch *mode {
	case "both":
		m = workload.HeteroBoth
	case "cpu-homogeneous":
		m = workload.HeteroCPUHomogeneous
	case "mem-homogeneous":
		m = workload.HeteroMemHomogeneous
	default:
		fmt.Fprintf(os.Stderr, "expgen: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *slack <= 0 || *slack >= 1 {
		fmt.Fprintln(os.Stderr, "expgen: slack must be in (0,1)")
		os.Exit(2)
	}

	scn := vmalloc.Scenario{
		Hosts: *hosts, Services: *services, COV: *cov, Slack: *slack,
		Mode: m, Seed: *seed,
	}
	var p *vmalloc.Problem
	if *fromTrace != "" {
		recs, err := trace.ReadFile(*fromTrace)
		if err != nil {
			fatal(err)
		}
		emp, err := trace.Extract(recs)
		if err != nil {
			fatal(err)
		}
		p = workload.GenerateSampled(scn, emp)
	} else {
		p = vmalloc.Generate(scn)
	}
	if *out == "" {
		if err := p.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := p.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "expgen: wrote %d nodes, %d services to %s\n",
		p.NumNodes(), p.NumServices(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expgen:", err)
	os.Exit(1)
}
