// Command vmalloc solves one resource-allocation problem instance with any
// registered algorithm and prints the placement and achieved minimum yield.
//
// Usage:
//
//	vmalloc -in problem.json [-algo METAHVPLIGHT] [-seed 1] [-parallel]
//	vmalloc -demo            # run the paper's Figure 1 example
//
// One-shot runs compose with the durable daemon through cluster snapshots:
//
//	vmalloc -in problem.json -state-out cluster.json   # solve, save as cluster state
//	vmalloc -state-in cluster.json -state-out c2.json  # load state, run one epoch, save
//	vmallocd -dir data -state-in cluster.json          # boot the daemon from it
//
// A state file is the same stable ClusterState JSON the daemon snapshots and
// serves at GET /v1/snapshot, so the three tools round-trip freely.
package main

import (
	"flag"
	"fmt"
	"os"

	"vmalloc"
	"vmalloc/internal/lp"
	"vmalloc/internal/relax"
	"vmalloc/internal/server"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (see cmd/expgen)")
		algo     = flag.String("algo", vmalloc.AlgoMetaHVPLight, "algorithm name")
		seed     = flag.Int64("seed", 1, "seed for randomized algorithms")
		parallel = flag.Bool("parallel", false, "run meta strategies concurrently")
		bound    = flag.Bool("bound", false, "also print the LP relaxation upper bound")
		demo     = flag.Bool("demo", false, "solve the paper's Figure 1 example")
		stateIn  = flag.String("state-in", "", "cluster state JSON to load (runs one reallocation epoch)")
		stateOut = flag.String("state-out", "", "write the resulting cluster state JSON here")
		budget   = flag.Int("budget", -1, "with -state-in: run a repair epoch with this migration budget instead of a full reallocation (-1 = full)")
		mpsOut   = flag.String("mps-out", "", "write the problem's LP relaxation (Eqs. 3-7) to this file in MPS format and continue")
	)
	flag.Parse()

	if *stateIn != "" {
		runStateEpoch(*stateIn, *stateOut, *budget, *parallel)
		return
	}

	var p *vmalloc.Problem
	switch {
	case *demo:
		p = figure1()
	case *in != "":
		var err error
		p, err = vmalloc.LoadProblem(*in)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "vmalloc: need -in FILE, -state-in FILE or -demo; known algorithms:")
		for _, a := range vmalloc.Algorithms() {
			fmt.Fprintln(os.Stderr, "  ", a)
		}
		os.Exit(2)
	}

	if *mpsOut != "" {
		if err := writeMPSFile(*mpsOut, p); err != nil {
			fatal(err)
		}
		fmt.Printf("mps written:    %s\n", *mpsOut)
	}

	res, err := vmalloc.Solve(*algo, p, &vmalloc.Options{Seed: *seed, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	if !res.Solved {
		fmt.Printf("%s: no feasible placement found (%d nodes, %d services)\n",
			*algo, p.NumNodes(), p.NumServices())
		os.Exit(1)
	}
	if *stateOut != "" {
		if err := saveSolvedState(*stateOut, p, res); err != nil {
			fatal(err)
		}
		fmt.Printf("state written:  %s\n", *stateOut)
	}
	fmt.Printf("algorithm:      %s\n", *algo)
	fmt.Printf("minimum yield:  %.4f\n", res.MinYield)
	if *bound {
		if ub, err := vmalloc.RelaxedUpperBound(p); err == nil && ub >= 0 {
			fmt.Printf("LP upper bound: %.4f\n", ub)
		}
	}
	fmt.Println("placement:")
	for j, h := range res.Placement {
		name := p.Services[j].Name
		if name == "" {
			name = fmt.Sprintf("service-%d", j)
		}
		node := p.Nodes[h].Name
		if node == "" {
			node = fmt.Sprintf("node-%d", h)
		}
		fmt.Printf("  %-16s -> %-12s yield %.4f\n", name, node, res.Yields[j])
	}
}

// runStateEpoch loads a cluster state, runs one epoch on it (full
// reallocation or bounded repair) and optionally saves the new state — the
// one-shot counterpart of POST /v1/reallocate on the daemon.
func runStateEpoch(stateIn, stateOut string, budget int, parallel bool) {
	st, err := loadState(stateIn)
	if err != nil {
		fatal(err)
	}
	c, err := vmalloc.RestoreCluster(st, &vmalloc.ClusterOptions{Parallel: parallel})
	if err != nil {
		fatal(err)
	}
	var ep *vmalloc.ClusterEpoch
	kind := "reallocation"
	if budget >= 0 {
		ep = c.Repair(budget)
		kind = fmt.Sprintf("repair (budget %d)", budget)
	} else {
		ep = c.Reallocate()
	}
	fmt.Printf("cluster:        %d nodes, %d services\n", len(st.Nodes), len(st.Services))
	if !ep.Result.Solved {
		fmt.Printf("%s epoch failed: previous placement kept\n", kind)
	} else {
		fmt.Printf("%s epoch: min yield %.4f, %d migrations\n", kind, ep.Result.MinYield, ep.Migrations)
	}
	if stateOut != "" {
		if err := saveState(stateOut, c.State()); err != nil {
			fatal(err)
		}
		fmt.Printf("state written:  %s\n", stateOut)
	}
	if !ep.Result.Solved {
		os.Exit(1)
	}
}

// writeMPSFile dumps the paper's rational relaxation (the same model
// internal/relax solves for LP rosters and bounds) in MPS format, so the
// instance can be cross-checked against an external solver.
func writeMPSFile(path string, p *vmalloc.Problem) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lp.WriteMPS(f, relax.Encode(p).LP); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveSolvedState converts a solved one-shot problem into daemon-ready
// cluster state: every service is installed with its solved placement.
func saveSolvedState(path string, p *vmalloc.Problem, res *vmalloc.Result) error {
	c, err := vmalloc.NewCluster(p.Nodes, nil)
	if err != nil {
		return err
	}
	for j := range p.Services {
		if err := c.RestoreAdd(j, res.Placement[j], p.Services[j], p.Services[j]); err != nil {
			return err
		}
	}
	return saveState(path, c.State())
}

// loadState/saveState go through the same DecodeState/EncodeState the
// daemon uses, so the CLI and vmallocd cannot drift on the shared format.
func loadState(path string) (*vmalloc.ClusterState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := server.DecodeState(data)
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", path, err)
	}
	return st, nil
}

func saveState(path string, st *vmalloc.ClusterState) error {
	data, err := server.EncodeState(st)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func figure1() *vmalloc.Problem {
	return &vmalloc.Problem{
		Nodes: []vmalloc.Node{
			{Name: "A", Elementary: vmalloc.Of(0.8, 1.0), Aggregate: vmalloc.Of(3.2, 1.0)},
			{Name: "B", Elementary: vmalloc.Of(1.0, 0.5), Aggregate: vmalloc.Of(2.0, 0.5)},
		},
		Services: []vmalloc.Service{{
			Name:    "svc",
			ReqElem: vmalloc.Of(0.5, 0.5), ReqAgg: vmalloc.Of(1.0, 0.5),
			NeedElem: vmalloc.Of(0.5, 0.0), NeedAgg: vmalloc.Of(1.0, 0.0),
		}},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmalloc:", err)
	os.Exit(1)
}
