// Command vmalloc solves one resource-allocation problem instance with any
// registered algorithm and prints the placement and achieved minimum yield.
//
// Usage:
//
//	vmalloc -in problem.json [-algo METAHVPLIGHT] [-seed 1] [-parallel]
//	vmalloc -demo            # run the paper's Figure 1 example
package main

import (
	"flag"
	"fmt"
	"os"

	"vmalloc"
)

func main() {
	var (
		in       = flag.String("in", "", "problem JSON file (see cmd/expgen)")
		algo     = flag.String("algo", vmalloc.AlgoMetaHVPLight, "algorithm name")
		seed     = flag.Int64("seed", 1, "seed for randomized algorithms")
		parallel = flag.Bool("parallel", false, "run meta strategies concurrently")
		bound    = flag.Bool("bound", false, "also print the LP relaxation upper bound")
		demo     = flag.Bool("demo", false, "solve the paper's Figure 1 example")
	)
	flag.Parse()

	var p *vmalloc.Problem
	switch {
	case *demo:
		p = figure1()
	case *in != "":
		var err error
		p, err = vmalloc.LoadProblem(*in)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "vmalloc: need -in FILE or -demo; known algorithms:")
		for _, a := range vmalloc.Algorithms() {
			fmt.Fprintln(os.Stderr, "  ", a)
		}
		os.Exit(2)
	}

	res, err := vmalloc.Solve(*algo, p, &vmalloc.Options{Seed: *seed, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	if !res.Solved {
		fmt.Printf("%s: no feasible placement found (%d nodes, %d services)\n",
			*algo, p.NumNodes(), p.NumServices())
		os.Exit(1)
	}
	fmt.Printf("algorithm:      %s\n", *algo)
	fmt.Printf("minimum yield:  %.4f\n", res.MinYield)
	if *bound {
		if ub, err := vmalloc.RelaxedUpperBound(p); err == nil && ub >= 0 {
			fmt.Printf("LP upper bound: %.4f\n", ub)
		}
	}
	fmt.Println("placement:")
	for j, h := range res.Placement {
		name := p.Services[j].Name
		if name == "" {
			name = fmt.Sprintf("service-%d", j)
		}
		node := p.Nodes[h].Name
		if node == "" {
			node = fmt.Sprintf("node-%d", h)
		}
		fmt.Printf("  %-16s -> %-12s yield %.4f\n", name, node, res.Yields[j])
	}
}

func figure1() *vmalloc.Problem {
	return &vmalloc.Problem{
		Nodes: []vmalloc.Node{
			{Name: "A", Elementary: vmalloc.Of(0.8, 1.0), Aggregate: vmalloc.Of(3.2, 1.0)},
			{Name: "B", Elementary: vmalloc.Of(1.0, 0.5), Aggregate: vmalloc.Of(2.0, 0.5)},
		},
		Services: []vmalloc.Service{{
			Name:    "svc",
			ReqElem: vmalloc.Of(0.5, 0.5), ReqAgg: vmalloc.Of(1.0, 0.5),
			NeedElem: vmalloc.Of(0.5, 0.0), NeedAgg: vmalloc.Of(1.0, 0.0),
		}},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmalloc:", err)
	os.Exit(1)
}
