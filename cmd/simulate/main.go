// Command simulate runs the dynamic hosting-platform simulation (the §8
// future-work system) on the persistent allocation engine: services arrive
// and depart over time, METAHVPLIGHT reallocates every epoch on warm solver
// state, CPU-need estimates are noisy, and the mitigation threshold is fixed
// or adaptive. -parallel races the strategy roster across workers without
// changing the trajectory.
//
// Usage:
//
//	simulate -hosts 16 -rate 4 -lifetime 10 -horizon 200 -epoch 5 \
//	         -maxerr 0.2 -threshold adaptive -parallel
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"vmalloc/internal/platform"
	"vmalloc/internal/workload"
)

func main() {
	var (
		hosts     = flag.Int("hosts", 16, "number of nodes")
		cov       = flag.Float64("cov", 0.5, "node capacity coefficient of variation")
		rate      = flag.Float64("rate", 4, "service arrival rate (per time unit)")
		lifetime  = flag.Float64("lifetime", 10, "mean service lifetime")
		horizon   = flag.Float64("horizon", 200, "simulated duration")
		epoch     = flag.Float64("epoch", 5, "reallocation period")
		maxErr    = flag.Float64("maxerr", 0, "max CPU-need estimation error")
		threshold = flag.String("threshold", "0", "mitigation threshold (number or 'adaptive')")
		seed      = flag.Int64("seed", 1, "simulation seed")
		repair    = flag.Bool("repair", false, "use migration-bounded incremental repair instead of full reallocation")
		budget    = flag.Int("budget", -1, "migrations allowed per repair epoch (-1 = unlimited)")
		parallel  = flag.Bool("parallel", false, "race the reallocation roster across workers (deterministic: same trajectory as sequential)")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	th := 0.0
	if *threshold == "adaptive" {
		th = platform.AdaptiveThreshold
	} else {
		v, err := strconv.ParseFloat(*threshold, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate: bad -threshold:", err)
			os.Exit(2)
		}
		th = v
	}

	nodes := workload.Platform(workload.Scenario{
		Hosts: *hosts, COV: *cov, Mode: workload.HeteroBoth, Seed: *seed,
	}, rand.New(rand.NewSource(*seed)))

	stats, err := platform.Run(platform.Config{
		Nodes:           nodes,
		ArrivalRate:     *rate,
		MeanLifetime:    *lifetime,
		Horizon:         *horizon,
		Epoch:           *epoch,
		MaxErr:          *maxErr,
		Threshold:       th,
		UseRepair:       *repair,
		MigrationBudget: *budget,
		Parallel:        *parallel,
		Workers:         *workers,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}

	fmt.Printf("arrivals=%d rejections=%d (%.1f%%) departures=%d migrations=%d reallocs=%d failed-epochs=%d\n",
		stats.Arrivals, stats.Rejections, stats.RejectionRate()*100,
		stats.Departures, stats.Migrations, stats.Reallocs, stats.FailedEpoch)
	fmt.Printf("mean minimum yield over epochs: %.4f\n\n", stats.MeanMinYield())

	fmt.Println("time     services  minyield  meanyield  migrations  threshold")
	for _, s := range stats.Samples {
		fmt.Printf("%7.1f  %8d  %.4f    %.4f     %10d  %.4f\n",
			s.Time, s.Services, s.MinYield, s.MeanYield, s.Migrations, s.Threshold)
	}
}
