// Command loadgen drives a running vmallocd with an open-loop (Poisson
// arrival) or closed-loop (saturation) workload and reports throughput and
// HDR-quantile latency.
//
// Arrivals are generated on a schedule independent of response times; each
// request's latency is measured from its *scheduled* arrival, so queueing
// delay under overload is charged to the server rather than silently absorbed
// by a stalled generator (no coordinated omission). With -rate 0 the
// generator is closed-loop instead: -conns workers issue requests
// back-to-back, which is the right mode for measuring peak throughput.
//
// The churn mix is add:remove:update request weights; adds carry -batch
// services each (batch > 1 uses POST /v1/services:batch, batch == 1 the
// single-admission endpoint), removes and updates target a random previously
// admitted service.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -rate 200 -duration 30s -mix 90:5:5
//	loadgen -addr http://127.0.0.1:8080 -batch 64 -duration 10s   # closed-loop bulk admission
//	loadgen -compare -batch 64 -min-speedup 5 -out BENCH_http.json
//
// -compare runs two closed-loop passes — single admission, then -batch — and
// reports the admissions/sec speedup; -min-speedup and -min-rate turn the
// run into a CI gate (exit 1 below the floor).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc"
	"vmalloc/internal/metrics"
)

type config struct {
	addr       string
	rate       float64 // requests/sec; 0 = closed loop
	duration   time.Duration
	conns      int
	batch      int
	mixAdd     int
	mixRem     int
	mixUpd     int
	cpu        float64
	need       float64
	seed       int64
	retries    int
	metricsURL string
}

// Counts are the request and per-service outcome totals of one pass.
type Counts struct {
	Requests   uint64 `json:"requests"`
	HTTPErrors uint64 `json:"http_errors"`
	Retries    uint64 `json:"retries"`
	Dropped    uint64 `json:"dropped_arrivals"`
	Services   uint64 `json:"services_offered"`
	Admitted   uint64 `json:"admitted"`
	Rejected   uint64 `json:"rejected"`
	Invalid    uint64 `json:"invalid"`
	Removes    uint64 `json:"removes"`
	Updates    uint64 `json:"updates"`
}

// Latency summarizes the merged HDR histogram in milliseconds.
type Latency struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Report is the JSON result of one pass.
type Report struct {
	Addr        string        `json:"addr"`
	Mode        string        `json:"mode"` // "open" or "closed"
	RateRPS     float64       `json:"offered_rps,omitempty"`
	DurationSec float64       `json:"duration_sec"`
	Conns       int           `json:"conns"`
	Batch       int           `json:"batch"`
	Mix         string        `json:"mix"`
	Counts      Counts        `json:"counts"`
	AchievedRPS float64       `json:"achieved_rps"`
	AdmittedPS  float64       `json:"admitted_per_sec"`
	Latency     Latency       `json:"latency"`
	Metrics     *MetricsDelta `json:"metrics,omitempty"`
}

// MetricsDelta is the server-side counter movement over one pass, from
// scraping -metrics-url before and after. It pairs the client's view
// (admissions/sec, latency) with the server's (fsync amortization, epochs,
// admission counters): RecordsPerFsync is the group-commit batching factor
// actually achieved under this load.
type MetricsDelta struct {
	HTTPRequests     float64 `json:"http_requests"`
	Admissions       float64 `json:"admissions"`
	AdmissionBatches float64 `json:"admission_batches"`
	JournalRecords   float64 `json:"journal_records"`
	JournalFsyncs    float64 `json:"journal_fsyncs"`
	RecordsPerFsync  float64 `json:"records_per_fsync,omitempty"`
	Epochs           float64 `json:"epochs"`
	FailedEpochs     float64 `json:"failed_epochs"`
	TracesStarted    float64 `json:"traces_started"`
}

// CompareReport is the -compare output: single vs batched admission.
type CompareReport struct {
	Single  Report  `json:"single"`
	Batch   Report  `json:"batch"`
	Speedup float64 `json:"speedup"`
}

func main() {
	var cfg config
	var (
		mix        = flag.String("mix", "1:0:0", "add:remove:update request weights")
		out        = flag.String("out", "", "write the JSON report to this file")
		compare    = flag.Bool("compare", false, "closed-loop single-vs-batch admission comparison")
		minSpeedup = flag.Float64("min-speedup", 0, "with -compare: fail unless batch/single admissions-per-sec speedup reaches this")
		minRate    = flag.Float64("min-rate", 0, "fail unless admissions/sec reaches this floor")
	)
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "vmallocd base URL")
	flag.Float64Var(&cfg.rate, "rate", 0, "offered requests/sec (Poisson arrivals; 0 = closed loop)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length per pass")
	flag.IntVar(&cfg.conns, "conns", 8, "concurrent workers (and max idle connections)")
	flag.IntVar(&cfg.batch, "batch", 1, "services per admission request (>1 uses /v1/services:batch)")
	flag.Float64Var(&cfg.cpu, "cpu", 0.00002, "rigid requirement per service, per dimension")
	flag.Float64Var(&cfg.need, "need", 0.00002, "fluid need per service, per dimension")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.IntVar(&cfg.retries, "retries", 3, "max retries per request on transport errors and 502/503/504 (503 honors Retry-After)")
	flag.StringVar(&cfg.metricsURL, "metrics-url", "", "scrape this Prometheus endpoint before and after each pass and embed the server-side counter delta in the report (e.g. http://127.0.0.1:8080/metrics)")
	flag.Parse()

	if _, err := fmt.Sscanf(*mix, "%d:%d:%d", &cfg.mixAdd, &cfg.mixRem, &cfg.mixUpd); err != nil {
		fatal(fmt.Errorf("bad -mix %q (want add:remove:update, e.g. 90:5:5)", *mix))
	}
	if cfg.mixAdd <= 0 && cfg.mixRem <= 0 && cfg.mixUpd <= 0 {
		fatal(fmt.Errorf("-mix %q offers no work", *mix))
	}
	if cfg.batch < 1 || cfg.batch > 4096 {
		fatal(fmt.Errorf("-batch must be in [1, 4096]"))
	}

	dim, err := discoverDim(cfg.addr)
	if err != nil {
		fatal(fmt.Errorf("probing %s: %w", cfg.addr, err))
	}

	var result any
	ok := true
	if *compare {
		single := cfg
		single.rate = 0
		single.batch = 1
		batched := cfg
		batched.rate = 0
		if batched.batch == 1 {
			batched.batch = 64
		}
		fmt.Fprintf(os.Stderr, "loadgen: single-admission pass (%s, %d conns)\n", cfg.duration, cfg.conns)
		r1 := runPass(single, *mix, dim)
		fmt.Fprintf(os.Stderr, "loadgen: batch=%d pass (%s, %d conns)\n", batched.batch, cfg.duration, cfg.conns)
		r2 := runPass(batched, *mix, dim)
		cr := CompareReport{Single: r1, Batch: r2}
		if r1.AdmittedPS > 0 {
			cr.Speedup = r2.AdmittedPS / r1.AdmittedPS
		}
		result = cr
		fmt.Printf("single: %.0f admissions/sec (p99 %.2fms)\nbatch=%d: %.0f admissions/sec (p99 %.2fms)\nspeedup: %.2fx\n",
			r1.AdmittedPS, r1.Latency.P99, batched.batch, r2.AdmittedPS, r2.Latency.P99, cr.Speedup)
		if *minSpeedup > 0 && cr.Speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: speedup %.2fx below floor %.2fx\n", cr.Speedup, *minSpeedup)
			ok = false
		}
		if *minRate > 0 && r2.AdmittedPS < *minRate {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %.0f admissions/sec below floor %.0f\n", r2.AdmittedPS, *minRate)
			ok = false
		}
	} else {
		r := runPass(cfg, *mix, dim)
		result = r
		fmt.Printf("%s load: %.0f requests/sec achieved, %.0f admissions/sec\n",
			r.Mode, r.AchievedRPS, r.AdmittedPS)
		fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  p999 %.2f  max %.2f\n",
			r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Max)
		if *minRate > 0 && r.AdmittedPS < *minRate {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %.0f admissions/sec below floor %.0f\n", r.AdmittedPS, *minRate)
			ok = false
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// discoverDim reads the resource dimensionality from the server's snapshot so
// generated services match the recovered platform.
func discoverDim(addr string) (int, error) {
	resp, err := http.Get(addr + "/v1/snapshot")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/snapshot: %s", resp.Status)
	}
	var snap struct {
		Nodes []struct {
			Elementary []float64 `json:"elementary"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	if len(snap.Nodes) == 0 || len(snap.Nodes[0].Elementary) == 0 {
		return 0, fmt.Errorf("snapshot has no platform")
	}
	return len(snap.Nodes[0].Elementary), nil
}

// liveSet tracks admitted service ids so removes and updates have targets.
type liveSet struct {
	mu  sync.Mutex
	ids []int
}

func (l *liveSet) add(ids ...int) {
	l.mu.Lock()
	l.ids = append(l.ids, ids...)
	l.mu.Unlock()
}

// pick returns a random live id; take additionally claims it (for removes).
func (l *liveSet) pick(rng *rand.Rand, take bool) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ids) == 0 {
		return 0, false
	}
	i := rng.Intn(len(l.ids))
	id := l.ids[i]
	if take {
		l.ids[i] = l.ids[len(l.ids)-1]
		l.ids = l.ids[:len(l.ids)-1]
	}
	return id, true
}

type worker struct {
	cfg    config
	dim    int
	client *http.Client
	rng    *rand.Rand
	live   *liveSet
	lat    *metrics.HDR
	counts Counts
}

func runPass(cfg config, mix string, dim int) Report {
	var before map[string]float64
	if cfg.metricsURL != "" {
		m, err := scrape(cfg.metricsURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: metrics scrape: %v\n", err)
		} else {
			before = m
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conns,
		MaxIdleConnsPerHost: cfg.conns,
	}}
	live := &liveSet{}
	workers := make([]*worker, cfg.conns)
	for i := range workers {
		workers[i] = &worker{
			cfg: cfg, dim: dim, client: client, live: live,
			rng: rand.New(rand.NewSource(cfg.seed + int64(i)*7919)),
			lat: metrics.NewHDR(),
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var dropped atomic.Uint64
	var wg sync.WaitGroup
	if cfg.rate > 0 {
		// Open loop: one generator emits scheduled Poisson arrivals; workers
		// measure latency from the scheduled instant, so server-side queueing
		// under overload shows up in the quantiles.
		jobs := make(chan time.Time, 1<<16)
		go func() {
			defer close(jobs)
			rng := rand.New(rand.NewSource(cfg.seed ^ 0x5851f42d4c957f2d))
			next := start
			for {
				next = next.Add(time.Duration(rng.ExpFloat64() / cfg.rate * float64(time.Second)))
				if next.After(deadline) {
					return
				}
				time.Sleep(time.Until(next))
				select {
				case jobs <- next:
				default:
					dropped.Add(1) // generator queue overflow: server hopelessly behind
				}
			}
		}()
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for sched := range jobs {
					w.doOp(sched)
				}
			}(w)
		}
	} else {
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					w.doOp(time.Now())
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := Counts{Dropped: dropped.Load()}
	lat := metrics.NewHDR()
	for _, w := range workers {
		total.Requests += w.counts.Requests
		total.HTTPErrors += w.counts.HTTPErrors
		total.Retries += w.counts.Retries
		total.Services += w.counts.Services
		total.Admitted += w.counts.Admitted
		total.Rejected += w.counts.Rejected
		total.Invalid += w.counts.Invalid
		total.Removes += w.counts.Removes
		total.Updates += w.counts.Updates
		lat.Merge(w.lat)
	}
	mode := "closed"
	if cfg.rate > 0 {
		mode = "open"
	}
	var delta *MetricsDelta
	if before != nil {
		after, err := scrape(cfg.metricsURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: metrics scrape: %v\n", err)
		} else {
			delta = metricsDelta(before, after)
			fmt.Fprintf(os.Stderr, "loadgen: server delta: %.0f journal records / %.0f fsyncs (%.1f records/fsync), %.0f admissions in %.0f batches, %.0f epochs\n",
				delta.JournalRecords, delta.JournalFsyncs, delta.RecordsPerFsync,
				delta.Admissions, delta.AdmissionBatches, delta.Epochs)
		}
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return Report{
		Addr: cfg.addr, Mode: mode, RateRPS: cfg.rate,
		DurationSec: elapsed.Seconds(), Conns: cfg.conns, Batch: cfg.batch,
		Mix: mix, Counts: total,
		AchievedRPS: float64(total.Requests) / elapsed.Seconds(),
		AdmittedPS:  float64(total.Admitted) / elapsed.Seconds(),
		Latency: Latency{
			P50:  ms(lat.Quantile(0.50)),
			P95:  ms(lat.Quantile(0.95)),
			P99:  ms(lat.Quantile(0.99)),
			P999: ms(lat.Quantile(0.999)),
			Max:  ms(lat.Max()),
			Mean: lat.Mean() / 1e6,
		},
		Metrics: delta,
	}
}

// scrape fetches a Prometheus text exposition and sums every sample by bare
// family name (label sets collapsed), which is all a before/after counter
// delta needs.
func scrape(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	sums := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest := line, ""
		if i := strings.Index(line, "{"); i >= 0 {
			name = line[:i]
			j := strings.LastIndex(line, "}")
			if j < i {
				continue // malformed
			}
			rest = line[j+1:]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name, rest = line[:i], line[i+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		sums[name] += v
	}
	return sums, sc.Err()
}

// metricsDelta subtracts two scrapes into the report's server-side view.
func metricsDelta(before, after map[string]float64) *MetricsDelta {
	d := func(name string) float64 { return after[name] - before[name] }
	md := &MetricsDelta{
		HTTPRequests:     d("vmallocd_http_requests_total"),
		Admissions:       d("vmallocd_admissions_total"),
		AdmissionBatches: d("vmallocd_admission_batches_total"),
		JournalRecords:   d("vmallocd_journal_records_total"),
		JournalFsyncs:    d("vmallocd_journal_fsyncs_total"),
		Epochs:           d("vmallocd_epochs_total"),
		FailedEpochs:     d("vmallocd_failed_epochs_total"),
		TracesStarted:    d("vmallocd_traces_started_total"),
	}
	if md.JournalFsyncs > 0 {
		md.RecordsPerFsync = md.JournalRecords / md.JournalFsyncs
	}
	return md
}

// doOp draws one request from the churn mix, executes it, and records its
// latency from the scheduled arrival instant.
func (w *worker) doOp(scheduled time.Time) {
	k := w.rng.Intn(w.cfg.mixAdd + w.cfg.mixRem + w.cfg.mixUpd)
	switch {
	case k < w.cfg.mixAdd:
		w.doAdd()
	case k < w.cfg.mixAdd+w.cfg.mixRem:
		w.doRemove()
	default:
		w.doUpdate()
	}
	w.counts.Requests++
	w.lat.Record(time.Since(scheduled).Nanoseconds())
}

// service builds one small service matching the platform's dimensionality,
// with mild size jitter so admissions are not byte-identical.
func (w *worker) service() vmalloc.Service {
	req := make(vmalloc.Vec, w.dim)
	need := make(vmalloc.Vec, w.dim)
	for d := range req {
		req[d] = w.cfg.cpu * (0.5 + w.rng.Float64())
		need[d] = w.cfg.need * (0.5 + w.rng.Float64())
	}
	return vmalloc.Service{
		ReqElem: req, ReqAgg: req.Clone(),
		NeedElem: need, NeedAgg: need.Clone(),
	}
}

type addReq struct {
	True *vmalloc.Service `json:"true"`
}

func (w *worker) doAdd() {
	if w.cfg.batch == 1 {
		var resp struct {
			ID int `json:"id"`
		}
		w.counts.Services++
		code := w.post("POST", "/v1/services", addReq{True: ptr(w.service())}, &resp)
		switch code {
		case http.StatusCreated:
			w.counts.Admitted++
			w.live.add(resp.ID)
		case http.StatusConflict:
			w.counts.Rejected++
		case http.StatusBadRequest:
			w.counts.Invalid++
		}
		return
	}
	entries := make([]addReq, w.cfg.batch)
	for i := range entries {
		entries[i] = addReq{True: ptr(w.service())}
	}
	w.counts.Services += uint64(len(entries))
	var resp struct {
		Results []struct {
			ID *int `json:"id"`
		} `json:"results"`
		Admitted int `json:"admitted"`
		Rejected int `json:"rejected"`
		Invalid  int `json:"invalid"`
	}
	code := w.post("POST", "/v1/services:batch", struct {
		Services []addReq `json:"services"`
	}{entries}, &resp)
	if code != http.StatusOK {
		return
	}
	w.counts.Admitted += uint64(resp.Admitted)
	w.counts.Rejected += uint64(resp.Rejected)
	w.counts.Invalid += uint64(resp.Invalid)
	ids := make([]int, 0, len(resp.Results))
	for _, r := range resp.Results {
		if r.ID != nil {
			ids = append(ids, *r.ID)
		}
	}
	w.live.add(ids...)
}

func (w *worker) doRemove() {
	id, ok := w.live.pick(w.rng, true)
	if !ok {
		w.doAdd() // nothing to remove yet: keep offering load
		return
	}
	code := w.post("DELETE", fmt.Sprintf("/v1/services/%d", id), nil, nil)
	if code == http.StatusOK {
		w.counts.Removes++
	}
}

func (w *worker) doUpdate() {
	id, ok := w.live.pick(w.rng, false)
	if !ok {
		w.doAdd()
		return
	}
	need := make(vmalloc.Vec, w.dim)
	for d := range need {
		need[d] = w.cfg.need * (0.5 + w.rng.Float64())
	}
	body := struct {
		TrueElem vmalloc.Vec `json:"true_elem"`
		TrueAgg  vmalloc.Vec `json:"true_agg"`
		EstElem  vmalloc.Vec `json:"est_elem"`
		EstAgg   vmalloc.Vec `json:"est_agg"`
	}{need, need.Clone(), need.Clone(), need.Clone()}
	code := w.post("PUT", fmt.Sprintf("/v1/services/%d/needs", id), body, nil)
	if code == http.StatusOK {
		w.counts.Updates++
	}
}

// post issues one JSON request and decodes the response into out (when
// non-nil and the status is 2xx). Transport errors and 502/503/504 retry up
// to -retries times with capped exponential backoff — a 503 from an
// unpromoted replica carries Retry-After, which is honored (capped) instead
// of the default schedule. Returns the final status code, 0 on transport
// error.
func (w *worker) post(method, path string, body, out any) int {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			w.counts.HTTPErrors++
			return 0
		}
	}
	for attempt := 0; ; attempt++ {
		code, retryAfter, fatal := w.once(method, path, data, out)
		if fatal {
			return code
		}
		transient := code == 0 || code == http.StatusBadGateway ||
			code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
		if !transient || attempt >= w.cfg.retries {
			if code == 0 {
				w.counts.HTTPErrors++
			}
			return code
		}
		w.counts.Retries++
		d := (50 * time.Millisecond) << uint(attempt)
		if retryAfter > 0 {
			d = retryAfter
		}
		if d > 2*time.Second {
			d = 2 * time.Second
		}
		time.Sleep(d)
	}
}

// once issues a single attempt. fatal means the request can never succeed
// (build or decode failure, already counted); a plain transport error is
// (0, 0, false) and retryable.
func (w *worker) once(method, path string, data []byte, out any) (code int, retryAfter time.Duration, fatal bool) {
	var rd io.Reader
	if data != nil {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, w.cfg.addr+path, rd)
	if err != nil {
		w.counts.HTTPErrors++
		return 0, 0, true
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			w.counts.HTTPErrors++
			return 0, 0, true
		}
	}
	return resp.StatusCode, retryAfter, false
}

func ptr[T any](v T) *T { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
