package main

import "testing"

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		ns   float64
	}{
		{"BenchmarkTable1LPRounding-8 \t 3\t 123456789 ns/op", true, "BenchmarkTable1LPRounding", 123456789},
		{"BenchmarkLPSparseVsDense/dense-16 \t 1\t 1718712374 ns/op", true, "BenchmarkLPSparseVsDense/dense", 1718712374},
		{"BenchmarkX 	 10 	 42.5 ns/op 	 16 B/op", true, "BenchmarkX", 42.5},
		{"ok  \tvmalloc\t1.569s", false, "", 0},
		{"PASS", false, "", 0},
		{"BenchmarkBroken abc ns/op", false, "", 0},
	}
	for _, c := range cases {
		b, ok := parseLine(c.line)
		if ok != c.ok {
			t.Fatalf("%q: ok = %v, want %v", c.line, ok, c.ok)
		}
		if !ok {
			continue
		}
		if b.Name != c.name || b.NsPerOp != c.ns {
			t.Fatalf("%q: parsed %+v", c.line, b)
		}
	}
}

func TestParseLineMemStats(t *testing.T) {
	line := "BenchmarkMetaHeuristicsPaperScale/METAHVP-8 \t 1\t 52123456 ns/op \t 2048 B/op \t 12 allocs/op"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line %q should parse", line)
	}
	if b.NsPerOp != 52123456 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 2048 {
		t.Fatalf("B/op = %v", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Fatalf("allocs/op = %v", b.AllocsPerOp)
	}
	// Without -benchmem the pointers stay nil so JSON omits the fields.
	b, ok = parseLine("BenchmarkY 	 10 	 42.5 ns/op")
	if !ok || b.BytesPerOp != nil || b.AllocsPerOp != nil {
		t.Fatalf("plain line parsed as %+v (ok=%v)", b, ok)
	}
}

func TestParseLineExtraMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkJournalAppend/group-fsync-8 \t 32768\t 8252 ns/op\t 121182 records/s\t 210 B/op\t 3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkJournalAppend/group-fsync" || b.NsPerOp != 8252 {
		t.Fatalf("parsed %+v", b)
	}
	if got := b.Extra["records/s"]; got != 121182 {
		t.Fatalf("extra metric records/s = %v, want 121182", got)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 210 || b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Fatalf("mem stats lost around the extra metric: %+v", b)
	}
}
