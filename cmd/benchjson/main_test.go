package main

import "testing"

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		ns   float64
	}{
		{"BenchmarkTable1LPRounding-8 \t 3\t 123456789 ns/op", true, "BenchmarkTable1LPRounding", 123456789},
		{"BenchmarkLPSparseVsDense/dense-16 \t 1\t 1718712374 ns/op", true, "BenchmarkLPSparseVsDense/dense", 1718712374},
		{"BenchmarkX 	 10 	 42.5 ns/op 	 16 B/op", true, "BenchmarkX", 42.5},
		{"ok  \tvmalloc\t1.569s", false, "", 0},
		{"PASS", false, "", 0},
		{"BenchmarkBroken abc ns/op", false, "", 0},
	}
	for _, c := range cases {
		b, ok := parseLine(c.line)
		if ok != c.ok {
			t.Fatalf("%q: ok = %v, want %v", c.line, ok, c.ok)
		}
		if !ok {
			continue
		}
		if b.Name != c.name || b.NsPerOp != c.ns {
			t.Fatalf("%q: parsed %+v", c.line, b)
		}
	}
}
