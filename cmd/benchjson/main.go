// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive per-benchmark
// ns/op — and, when the run used -benchmem or b.ReportAllocs, B/op and
// allocs/op — (e.g. BENCH_lp.json, BENCH_vp.json) and the performance
// trajectory stays diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTable' -benchtime 1x . | benchjson > BENCH_lp.json
//	go test -run '^$' -bench 'PaperScale' -benchtime 1x -benchmem . | benchjson > BENCH_vp.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. BytesPerOp/AllocsPerOp are
// nil when the run did not report memory statistics. Extra captures custom
// b.ReportMetric units (e.g. "records/s" from the journal benches).
type Benchmark struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op [...]" result line.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iteration count, value, "ns/op".
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimGOMAXPROCS(fields[0]), Iters: iters}
	haveNs := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			haveNs = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			// Custom b.ReportMetric units look like "<value> <name>/<denom>".
			if strings.Contains(unit, "/") {
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
				i++
			}
		}
	}
	if !haveNs {
		return Benchmark{}, false
	}
	return b, true
}

// trimGOMAXPROCS drops the trailing "-N" procs suffix from a benchmark name.
func trimGOMAXPROCS(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
