// Command vmallocd is the durable allocation daemon: a vmalloc.Cluster
// behind a write-ahead journal, served over HTTP/JSON.
//
// Every mutation (admission, departure, need update, threshold change,
// applied reallocation epoch) is journaled with group-commit batched fsync
// and is durable when the response arrives; snapshots compact the log and
// bound recovery time. Restarting the daemon on the same -dir recovers the
// exact pre-shutdown cluster state from snapshot + WAL replay.
//
// Usage:
//
//	vmallocd -dir data -nodes nodes.json            # first boot: platform from a problem file
//	vmallocd -dir data -hosts 16 -cov 0.5 -seed 1   # first boot: generated platform
//	vmallocd -dir data -state-in cluster.json       # first boot: state from `vmalloc -state-out`
//	vmallocd -dir data                              # every later boot: recover and serve
//
// See internal/server for the endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/server"
	"vmalloc/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dir       = flag.String("dir", "", "journal directory (required)")
		nodesFile = flag.String("nodes", "", "problem JSON file supplying the platform (first boot)")
		stateIn   = flag.String("state-in", "", "cluster state JSON bootstrapping a fresh directory (first boot)")
		hosts     = flag.Int("hosts", 0, "generate a platform with this many hosts (first boot)")
		cov       = flag.Float64("cov", 0.5, "coefficient of variation for -hosts")
		seed      = flag.Int64("seed", 1, "seed for -hosts")
		threshold = flag.Float64("threshold", 0, "initial mitigation threshold (first boot)")
		tolerance = flag.Float64("tol", 0, "yield search tolerance (0 = paper default)")
		parallel  = flag.Bool("parallel", false, "race the meta strategies across workers")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
		lpBound   = flag.Bool("lpbound", false, "bracket the yield search with the warm-started LP bound")
		snapEvery = flag.Int("snapshot-every", 0, "checkpoint after this many records (0 = 4096, negative disables)")
		segBytes  = flag.Int64("segment-bytes", 0, "WAL segment rotation size (0 = 8 MiB)")
		fsync     = flag.String("fsync", "batch", "durability mode: batch (group commit) or none")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vmallocd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	var fsyncMode journal.FsyncMode
	switch *fsync {
	case "batch":
		fsyncMode = journal.FsyncBatch
	case "none":
		fsyncMode = journal.FsyncNone
	default:
		fatal(fmt.Errorf("unknown -fsync mode %q (want batch or none)", *fsync))
	}

	opts := &server.Options{
		Cluster: vmalloc.ClusterOptions{
			Tolerance:  *tolerance,
			Threshold:  *threshold,
			Parallel:   *parallel,
			Workers:    *workers,
			UseLPBound: *lpBound,
		},
		SegmentBytes:  *segBytes,
		Fsync:         fsyncMode,
		SnapshotEvery: *snapEvery,
	}

	// The platform only matters on first boot; an existing journal carries
	// its own.
	var nodes []vmalloc.Node
	switch {
	case *stateIn != "":
		data, err := os.ReadFile(*stateIn)
		if err != nil {
			fatal(err)
		}
		st, err := server.DecodeState(data)
		if err != nil {
			fatal(err)
		}
		opts.InitialState = st
	case *nodesFile != "":
		p, err := vmalloc.LoadProblem(*nodesFile)
		if err != nil {
			fatal(err)
		}
		nodes = p.Nodes
	case *hosts > 0:
		nodes = workload.Platform(workload.Scenario{
			Hosts: *hosts, COV: *cov, Mode: workload.HeteroBoth, Seed: *seed,
		}, rand.New(rand.NewSource(*seed)))
	}

	s, err := server.Open(*dir, nodes, opts)
	if err != nil {
		fatal(err)
	}
	stats := s.Stats()
	log.Printf("vmallocd: recovered %d services (replayed %d records, snapshot seq %d, truncated %d torn bytes)",
		stats.Services, stats.Replayed, stats.SnapshotSeq, stats.TruncatedBytes)

	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler(s)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("vmallocd: serving on %s (journal %s, fsync=%s)", *addr, *dir, *fsync)

	select {
	case <-ctx.Done():
		log.Printf("vmallocd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("vmallocd: http shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			s.Close()
			fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		fatal(err)
	}
	log.Printf("vmallocd: checkpointed and closed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmallocd:", err)
	os.Exit(1)
}
