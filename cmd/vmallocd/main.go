// Command vmallocd is the durable allocation daemon: a vmalloc.Cluster (or,
// with -shards K, a vmalloc.ShardedCluster of K placement domains) behind
// write-ahead journals, served over HTTP/JSON.
//
// Every mutation (admission, departure, need update, threshold change,
// applied reallocation epoch, cross-shard rebalance move) is journaled with
// group-commit batched fsync and is durable when the response arrives;
// snapshots compact the log and bound recovery time. Restarting the daemon
// on the same -dir recovers the exact pre-shutdown cluster state from
// snapshot + WAL replay — sharded directories replay one WAL per shard.
//
// A recovered directory defines its own platform: booting it with -nodes,
// -hosts, -state-in, -threshold or a conflicting -shards fails fast instead
// of silently ignoring the flags.
//
// Usage:
//
//	vmallocd -dir data -nodes nodes.json            # first boot: platform from a problem file
//	vmallocd -dir data -hosts 16 -cov 0.5 -seed 1   # first boot: generated platform
//	vmallocd -dir data -state-in cluster.json       # first boot: state from `vmalloc -state-out`
//	vmallocd -dir data -hosts 64 -shards 4          # first boot: 4 placement domains
//	vmallocd -dir data                              # every later boot: recover and serve
//
// See internal/server for the endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/obs"
	"vmalloc/internal/replica"
	"vmalloc/internal/server"
	"vmalloc/internal/workload"
)

// store is the daemon-facing surface shared by the unsharded and sharded
// stores.
type store interface {
	server.API
	Close() error
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dir       = flag.String("dir", "", "journal directory (required)")
		nodesFile = flag.String("nodes", "", "problem JSON file supplying the platform (first boot)")
		stateIn   = flag.String("state-in", "", "cluster state JSON bootstrapping a fresh directory (first boot)")
		hosts     = flag.Int("hosts", 0, "generate a platform with this many hosts (first boot)")
		cov       = flag.Float64("cov", 0.5, "coefficient of variation for -hosts")
		seed      = flag.Int64("seed", 1, "seed for -hosts (and the shard admission hash)")
		threshold = flag.Float64("threshold", 0, "initial mitigation threshold (first boot)")
		tolerance = flag.Float64("tol", 0, "yield search tolerance (0 = paper default)")
		parallel  = flag.Bool("parallel", false, "race the meta strategies across workers (per shard)")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
		lpBound   = flag.Bool("lpbound", false, "bracket the yield search with the warm-started LP bound")
		shards    = flag.Int("shards", 0, "partition the platform into this many placement domains (first boot; 0 = unsharded)")
		rebGap    = flag.Float64("rebalance-gap", 0, "rebalance when the bottleneck shard trails the median yield by more than this (0 = default 0.1, negative disables)")
		rebMoves  = flag.Int("rebalance-moves", 0, "max services migrated per rebalance pass (0 = default 2, negative disables)")
		snapEvery = flag.Int("snapshot-every", 0, "checkpoint after this many records (0 = 4096, negative disables)")
		segBytes  = flag.Int64("segment-bytes", 0, "WAL segment rotation size (0 = 8 MiB)")
		fsync     = flag.String("fsync", "batch", "durability mode: batch (group commit) or none")
		noMetrics = flag.Bool("no-metrics", false, "disable GET /metrics and per-endpoint instrumentation")
		follow    = flag.String("follow", "", "follow the leader vmallocd at this base URL: serve a read-only replica until POST /v1/promote")
		poll      = flag.Duration("poll", 0, "replication pull interval once caught up (with -follow; 0 = 200ms)")
		readyLag  = flag.Int64("ready-lag", 0, "max per-shard replication lag in records before GET /readyz fails (with -follow; 0 = 4096, negative disables)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error (per-request lines log at debug)")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		traceRing = flag.Int("trace-ring", 0, "retained request traces behind GET /v1/debug/traces (0 = 256, negative disables tracing)")
		slowTrace = flag.Duration("slow-trace", 0, "traces slower than this are kept in the longer-lived slow ring (0 = 500ms)")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vmallocd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	lg, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	observer := &obs.Observer{
		Tracer: obs.NewTracer(*traceRing, *slowTrace),
		Epochs: obs.NewEpochRing(0),
	}
	if *traceRing < 0 {
		observer.Tracer.SetEnabled(false)
	}

	var fsyncMode journal.FsyncMode
	switch *fsync {
	case "batch":
		fsyncMode = journal.FsyncBatch
	case "none":
		fsyncMode = journal.FsyncNone
	default:
		fatal(fmt.Errorf("unknown -fsync mode %q (want batch or none)", *fsync))
	}

	// A recovered directory carries its own platform; first-boot flags on
	// top of it are a conflict, not a preference. Fail fast and name the
	// platform that would win instead of silently ignoring the flags.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	recovered, manifest, err := server.DirRecovered(*dir)
	if err != nil {
		fatal(err)
	}
	if recovered {
		var conflicts []string
		for _, name := range []string{"nodes", "hosts", "state-in", "threshold", "cov", "seed"} {
			if set[name] {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if set["shards"] && (manifest == nil && *shards > 0 || manifest != nil && *shards != manifest.Shards) {
			conflicts = append(conflicts, "-shards")
		}
		if len(conflicts) > 0 {
			fatal(fmt.Errorf("%s already holds a recovered platform (%s); it conflicts with %s — drop the flags to serve the recovered state, or point -dir at a fresh directory",
				*dir, server.DescribeDir(*dir), strings.Join(conflicts, ", ")))
		}
	}

	opts := &server.Options{
		Cluster: vmalloc.ClusterOptions{
			Tolerance:  *tolerance,
			Threshold:  *threshold,
			Parallel:   *parallel,
			Workers:    *workers,
			UseLPBound: *lpBound,
		},
		SegmentBytes:   *segBytes,
		Fsync:          fsyncMode,
		SnapshotEvery:  *snapEvery,
		Shards:         *shards,
		ShardSeed:      *seed,
		RebalanceGap:   *rebGap,
		RebalanceMoves: *rebMoves,
		Obs:            observer,
	}

	// The platform only matters on first boot; an existing journal carries
	// its own (and the conflict check above already rejected overrides).
	var nodes []vmalloc.Node
	switch {
	case *stateIn != "":
		data, err := os.ReadFile(*stateIn)
		if err != nil {
			fatal(err)
		}
		st, err := server.DecodeState(data)
		if err != nil {
			fatal(err)
		}
		opts.InitialState = st
	case *nodesFile != "":
		p, err := vmalloc.LoadProblem(*nodesFile)
		if err != nil {
			fatal(err)
		}
		nodes = p.Nodes
	case *hosts > 0:
		nodes = workload.Platform(workload.Scenario{
			Hosts: *hosts, COV: *cov, Mode: workload.HeteroBoth, Seed: *seed,
		}, rand.New(rand.NewSource(*seed)))
	}

	var s store
	if *follow != "" {
		// A follower's platform comes from the leader's manifest; every
		// first-boot platform flag is a conflict.
		var conflicts []string
		for _, name := range []string{"nodes", "hosts", "state-in", "threshold", "cov", "shards"} {
			if set[name] {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			fatal(fmt.Errorf("-follow replicates the leader's platform; it conflicts with %s", strings.Join(conflicts, ", ")))
		}
		f, err := replica.Open(context.Background(), replica.Options{
			Leader:   *follow,
			Dir:      *dir,
			Poll:     *poll,
			ReadyLag: *readyLag,
			Server:   opts,
		})
		if err != nil {
			fatal(err)
		}
		s = replica.NewSwitch(f)
		lg.Info("following leader (read-only until POST /v1/promote)", "leader", *follow)
	} else if manifest != nil || (!recovered && *shards > 0) {
		ss, err := server.OpenSharded(*dir, nodes, opts)
		if err != nil {
			fatal(err)
		}
		for _, w := range ss.RecoveryWarnings {
			lg.Warn("recovery", "warning", w)
		}
		s = ss
	} else {
		st, err := server.Open(*dir, nodes, opts)
		if err != nil {
			fatal(err)
		}
		s = st
	}
	stats := s.Stats()
	lg.Info("recovered",
		"services", stats.Services,
		"shards", max(stats.Shards, 1),
		"replayed", stats.Replayed,
		"snapshot_seq", stats.SnapshotSeq,
		"truncated_bytes", stats.TruncatedBytes,
	)

	var m *server.Metrics
	if !*noMetrics {
		m = server.NewObservedMetrics(s, observer)
	}
	var handler http.Handler = server.NewObservedHandler(s, m, observer, lg)
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A slow-header client must not pin a connection forever
		// (slowloris); epochs can legitimately run long, so responses get
		// no WriteTimeout — only reads and idle keep-alives are bounded.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	lg.Info("serving", "addr", *addr, "journal", *dir, "fsync", *fsync, "pprof", *pprofOn)

	select {
	case <-ctx.Done():
		lg.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			lg.Warn("http shutdown", "err", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			s.Close()
			fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		fatal(err)
	}
	lg.Info("checkpointed and closed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmallocd:", err)
	os.Exit(1)
}
