// Command experiments regenerates the tables and figures of the paper's
// evaluation (§5–§6). Each -exp target prints the corresponding table or
// figure series as text.
//
// By default the sweeps are reduced (fewer COV points, seeds and services
// per node) so a full run completes on a laptop; -full selects the paper's
// original scale (64 hosts, 100/250/500 services, 41 COV points, 9 slacks,
// 100 seeds) and can run for days — see EXPERIMENTS.md.
//
// Usage:
//
//	experiments -exp table1
//	experiments -exp fig2 [-slack 0.3] [-services 125]
//	experiments -exp fig5 [-cov 0.5] [-slack 0.4]
//	experiments -exp light
//	experiments -exp binorder
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/exp"
	"vmalloc/internal/exp/recovery"
	"vmalloc/internal/hvp"
	"vmalloc/internal/platform"
	"vmalloc/internal/plot"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
	"vmalloc/internal/vp"
	"vmalloc/internal/workload"
)

func main() {
	var (
		which    = flag.String("exp", "", "experiment: table1|table2|fig2..fig7|light|binorder|hardness|theorem1|profile|online|sharded|recovery")
		full     = flag.Bool("full", false, "use the paper's original sweep sizes (very slow)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		slack    = flag.Float64("slack", -1, "override memory slack")
		cov      = flag.Float64("cov", -1, "override coefficient of variation (error experiments)")
		services = flag.Int("services", 0, "override service count (figure experiments)")
		seeds    = flag.Int("seeds", 0, "override number of seeds per point")
		doPlot   = flag.Bool("plot", false, "render figure experiments as ASCII charts")
		csvOut   = flag.String("csv", "", "also write raw results as CSV to this file prefix")
	)
	flag.Parse()
	plotFlag = *doPlot
	csvPrefix = *csvOut

	cfg := newConfig(*full)
	if *seeds > 0 {
		cfg.seeds = seedRange(*seeds)
	}
	if *workers > 0 {
		cfg.workers = *workers
	}

	switch *which {
	case "table1":
		table1(cfg)
	case "table2":
		table2(cfg)
	case "fig2", "fig3", "fig4":
		figYieldVsCOV(cfg, *which, *slack, *services)
	case "fig5", "fig6", "fig7":
		figErrors(cfg, *which, *slack, *cov, *services)
	case "light":
		lightComparison(cfg)
	case "binorder":
		binOrderAblation(cfg)
	case "hardness":
		hardnessCurve(cfg)
	case "theorem1":
		theorem1Table()
	case "profile":
		profileStrategies(cfg)
	case "online":
		onlineTable(cfg)
	case "sharded":
		shardedTable(cfg)
	case "recovery":
		recoveryTable(cfg)
	default:
		fmt.Fprintln(os.Stderr, "experiments: unknown or missing -exp (see -h)")
		os.Exit(2)
	}
}

// config holds sweep sizes for quick vs full mode.
type config struct {
	full      bool
	hosts     int
	services  []int
	covs      []float64
	slacks    []float64
	seeds     []int64
	errSteps  []float64
	workers   int
	lpHosts   int
	lpSvcs    []int
	tolerance float64
}

func newConfig(full bool) config {
	if full {
		return config{
			full:     true,
			hosts:    64,
			services: []int{100, 250, 500},
			covs:     covRange(0, 1.0, 0.025),
			slacks:   covRange(0.1, 0.9, 0.1),
			seeds:    seedRange(100),
			errSteps: covRange(0, 0.3, 0.02),
			lpHosts:  16,
			lpSvcs:   []int{48, 64},
		}
	}
	return config{
		hosts:    16,
		services: []int{25, 60, 125},
		covs:     []float64{0, 0.25, 0.5, 0.75, 1.0},
		slacks:   []float64{0.3, 0.5, 0.7},
		seeds:    seedRange(3),
		errSteps: []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
		lpHosts:  8,
		lpSvcs:   []int{32},
	}
}

func covRange(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+1e-9; x += step {
		out = append(out, x)
	}
	return out
}

func seedRange(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func table1(cfg config) {
	fmt.Println("=== Table 1: pairwise (Y_{A,B}, S_{A,B}) — heuristic tier ===")
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: cfg.services,
		COVs: cfg.covs, Slacks: cfg.slacks, Seeds: cfg.seeds,
	}
	runner := &exp.Runner{Workers: cfg.workers}
	heur := runner.Run(grid.Scenarios(), exp.HeuristicRoster(cfg.tolerance))
	dumpCSV("table1", heur)
	names := []string{exp.NameMetaGreedy, exp.NameMetaVP, exp.NameMetaHVP, exp.NameMetaHVPLight}
	for _, j := range cfg.services {
		sub := heur.Filter(func(s workload.Scenario) bool { return s.Services == j })
		fmt.Printf("\n-- %d services (%d hosts, %d instances) --\n", j, cfg.hosts, len(sub.Scenarios))
		fmt.Print(sub.Table1(names))
		fmt.Print(sub.SuccessSummary(names))
	}

	fmt.Println("\n=== Table 1: LP tier (RRND/RRNZ, sparse warm-started simplex) ===")
	lpGrid := exp.GridSpec{
		Hosts: cfg.lpHosts, Services: cfg.lpSvcs,
		COVs: []float64{0, 0.5, 1.0}, Slacks: []float64{0.4, 0.6}, Seeds: cfg.seeds,
	}
	all := runner.Run(lpGrid.Scenarios(), exp.FullRoster(cfg.tolerance, 42))
	lpNames := []string{exp.NameRRND, exp.NameRRNZ, exp.NameMetaGreedy, exp.NameMetaVP, exp.NameMetaHVP}
	for _, j := range cfg.lpSvcs {
		sub := all.Filter(func(s workload.Scenario) bool { return s.Services == j })
		fmt.Printf("\n-- %d services (%d hosts, %d instances) --\n", j, cfg.lpHosts, len(sub.Scenarios))
		fmt.Print(sub.Table1(lpNames))
		fmt.Print(sub.SuccessSummary(lpNames))
	}
}

func table2(cfg config) {
	fmt.Println("=== Table 2: mean run times (this machine; paper used a 2.27GHz Xeon) ===")
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: cfg.services,
		COVs: []float64{0, 0.5, 1.0}, Slacks: []float64{0.5}, Seeds: cfg.seeds,
	}
	runner := &exp.Runner{Workers: cfg.workers}
	rs := runner.Run(grid.Scenarios(), exp.HeuristicRoster(cfg.tolerance))
	fmt.Print(rs.Table2([]string{exp.NameMetaGreedy, exp.NameMetaVP, exp.NameMetaHVP, exp.NameMetaHVPLight}))

	fmt.Println("\n-- RRNZ timing (LP tier sizes) --")
	lpGrid := exp.GridSpec{
		Hosts: cfg.lpHosts, Services: cfg.lpSvcs,
		COVs: []float64{0.5}, Slacks: []float64{0.5}, Seeds: cfg.seeds,
	}
	lrs := runner.Run(lpGrid.Scenarios(), []exp.Algo{exp.RRNZAlgo(42)})
	fmt.Print(lrs.Table2([]string{exp.NameRRNZ}))
}

func figYieldVsCOV(cfg config, which string, slackOv float64, svcOv int) {
	mode := workload.HeteroBoth
	label := "fully heterogeneous"
	switch which {
	case "fig3":
		mode = workload.HeteroCPUHomogeneous
		label = "CPU held homogeneous"
	case "fig4":
		mode = workload.HeteroMemHomogeneous
		label = "memory held homogeneous"
	}
	slack := 0.3
	if slackOv >= 0 {
		slack = slackOv
	}
	services := cfg.services[len(cfg.services)-1]
	if svcOv > 0 {
		services = svcOv
	}
	covs := cfg.covs
	if !cfg.full {
		covs = covRange(0, 0.9, 0.1)
	}
	fmt.Printf("=== %s: min-yield difference from METAHVP vs COV (%s; %d hosts, %d services, slack %.1f) ===\n",
		which, label, cfg.hosts, services, slack)
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: []int{services},
		COVs: covs, Slacks: []float64{slack}, Seeds: cfg.seeds, Mode: mode,
	}
	runner := &exp.Runner{Workers: cfg.workers}
	rs := runner.Run(grid.Scenarios(), exp.HeuristicRoster(cfg.tolerance))
	fmt.Print(rs.FigureYieldVsCOV([]string{exp.NameMetaGreedy, exp.NameMetaVP}, exp.NameMetaHVP))
	dumpCSV(which, rs)
	if plotFlag {
		series := rs.COVPlotSeries([]string{exp.NameMetaGreedy, exp.NameMetaVP}, exp.NameMetaHVP)
		fmt.Println()
		fmt.Print(plot.Render(series, 70, 20, "coefficient of variation", "minimum yield difference"))
	}
}

// plotFlag enables ASCII chart rendering for figure experiments.
var plotFlag bool

// csvPrefix, when nonempty, selects a file prefix for raw CSV dumps.
var csvPrefix string

// dumpCSV writes a result set to <prefix>-<tag>.csv when -csv is set.
func dumpCSV(tag string, rs *exp.ResultSet) {
	if csvPrefix == "" {
		return
	}
	path := csvPrefix + "-" + tag + ".csv"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
		return
	}
	defer f.Close()
	if err := rs.WriteResultsCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
}

// dumpErrorCSV writes error curves to <prefix>-<tag>.csv when -csv is set.
func dumpErrorCSV(tag string, curves []exp.ErrorCurves, thresholds []float64) {
	if csvPrefix == "" {
		return
	}
	path := csvPrefix + "-" + tag + ".csv"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
		return
	}
	defer f.Close()
	if err := exp.WriteErrorCurvesCSV(f, curves, thresholds); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
}

func figErrors(cfg config, which string, slackOv, covOv float64, svcOv int) {
	services := map[string]int{"fig5": cfg.services[0], "fig6": cfg.services[1], "fig7": cfg.services[2]}[which]
	if svcOv > 0 {
		services = svcOv
	}
	slack := 0.4
	if slackOv >= 0 {
		slack = slackOv
	}
	cov := 0.5
	if covOv >= 0 {
		cov = covOv
	}
	fmt.Printf("=== %s: achieved min yield vs max CPU-need error (%d hosts, %d services, slack %.1f, cov %.1f) ===\n",
		which, cfg.hosts, services, slack, cov)
	var scns []workload.Scenario
	for _, seed := range cfg.seeds {
		scns = append(scns, workload.Scenario{
			Hosts: cfg.hosts, Services: services, COV: cov, Slack: slack, Seed: seed,
		})
	}
	thresholds := []float64{0, 0.1, 0.3}
	e := &exp.ErrorExperiment{
		Scenarios:  scns,
		MaxErrors:  cfg.errSteps,
		Thresholds: thresholds,
		Workers:    cfg.workers,
		SeedSalt:   0x5eed,
	}
	curves := e.Run()
	fmt.Print(exp.FigureErrorCurves(curves, thresholds))
	dumpErrorCSV(which, curves, thresholds)
	if plotFlag {
		fmt.Println()
		fmt.Print(plot.Render(exp.ErrorPlotSeries(curves, thresholds), 70, 20,
			"maximum error", "minimum achieved yield"))
	}
}

func lightComparison(cfg config) {
	hosts, services := 32, 250
	if cfg.full {
		hosts, services = 512, 2000
	}
	fmt.Printf("=== METAHVP vs METAHVPLIGHT (%d hosts, %d services) ===\n", hosts, services)
	p := workload.Generate(workload.Scenario{
		Hosts: hosts, Services: services, COV: 0.5, Slack: 0.4, Seed: 1,
	})
	run := func(name string, f func(*core.Problem, float64) *core.Result) {
		start := time.Now()
		res := f(p, cfg.tolerance)
		el := time.Since(start)
		fmt.Printf("%-14s solved=%-5v min yield=%.4f time=%.2fs\n", name, res.Solved, res.MinYield, el.Seconds())
	}
	run(exp.NameMetaHVPLight, hvp.MetaHVPLight)
	run(exp.NameMetaHVP, hvp.MetaHVP)
}

func binOrderAblation(cfg config) {
	fmt.Println("=== Ablation: HVP First-Fit bin-order sensitivity ===")
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: []int{cfg.services[len(cfg.services)-1]},
		COVs: []float64{0.25, 0.5, 1.0}, Slacks: []float64{0.3}, Seeds: cfg.seeds,
	}
	var algos []exp.Algo
	var names []string
	for _, bo := range vp.AllOrders() {
		bo := bo
		name := "FF/bins=" + bo.String()
		names = append(names, name)
		algos = append(algos, exp.Algo{Name: name, Run: func(p *core.Problem) *core.Result {
			return vp.Solve(p, vp.Config{
				Alg:       vp.FirstFit,
				ItemOrder: vp.Order{Metric: vec.MetricSum, Descending: true},
				BinOrder:  bo,
				Hetero:    true,
			}, cfg.tolerance)
		}})
	}
	runner := &exp.Runner{Workers: cfg.workers}
	rs := runner.Run(grid.Scenarios(), algos)
	fmt.Print(rs.SuccessSummary(names))
}

// hardnessCurve sweeps the memory slack and reports success rates per
// algorithm — the §4 "slack quantifies hardness" observation.
func hardnessCurve(cfg config) {
	fmt.Println("=== Hardness: success rate vs memory slack ===")
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: []int{cfg.services[len(cfg.services)-1]},
		COVs: []float64{0.5}, Slacks: covRange(0.1, 0.9, 0.1), Seeds: cfg.seeds,
	}
	runner := &exp.Runner{Workers: cfg.workers}
	rs := runner.Run(grid.Scenarios(), exp.HeuristicRoster(cfg.tolerance))
	names := []string{exp.NameMetaGreedy, exp.NameMetaVP, exp.NameMetaHVP}
	fmt.Printf("%-8s", "slack")
	for _, n := range names {
		fmt.Printf(" %14s", n)
	}
	fmt.Println()
	slacks, _ := rs.SuccessBySlack(names[0])
	series := map[string][]float64{}
	for _, n := range names {
		_, rates := rs.SuccessBySlack(n)
		series[n] = rates
	}
	for i, s := range slacks {
		fmt.Printf("%-8.1f", s)
		for _, n := range names {
			fmt.Printf(" %13.1f%%", series[n][i]*100)
		}
		fmt.Println()
	}
}

// profileStrategies reproduces the §5.1 analysis that engineered
// METAHVPLIGHT: every base HVP strategy is ranked by success rate, then mean
// yield, and the top of the ranking is checked against the LIGHT subset.
func profileStrategies(cfg config) {
	fmt.Println("=== §5.1 strategy profile: base HVP strategies ranked (top 50) ===")
	grid := exp.GridSpec{
		Hosts: cfg.hosts, Services: []int{cfg.services[len(cfg.services)-1]},
		COVs: []float64{0.25, 0.5, 1.0}, Slacks: []float64{0.3, 0.6}, Seeds: cfg.seeds,
	}
	stats := exp.ProfileStrategies(grid.Scenarios(), cfg.tolerance, cfg.workers)
	fmt.Print(exp.RenderProfile(stats, 50))
	fmt.Printf("\nMETAHVPLIGHT membership among the top 50: %.0f%%\n",
		exp.LightCoverage(stats, 50)*100)
}

// theorem1Table prints the EQUALWEIGHTS competitive ratio achieved on the
// tight instance against the (2J-1)/J² bound.
func theorem1Table() {
	fmt.Println("=== Theorem 1: EQUALWEIGHTS worst-case ratio on the tight instance ===")
	fmt.Println("J     achieved   bound (2J-1)/J²")
	for _, J := range []int{2, 3, 5, 10, 25, 100} {
		needs := make([]float64, J)
		needs[0] = 1
		sum := 1.0
		for j := 1; j < J; j++ {
			needs[j] = 1 / float64(J)
			sum += needs[j]
		}
		nc := &sched.NodeCPU{
			Capacity: 1, Req: make([]float64, J),
			Estimated: make([]float64, J), TrueNeed: needs,
		}
		got := nc.MinYield(sched.EqualWeights) / (1 / sum)
		fmt.Printf("%-5d %.6f   %.6f\n", J, got, sched.CompetitiveLowerBound(J))
	}
}

// onlineTable prints the §8 online-platform churn sweep: steady-state
// yield, migration load and rejection rate against arrival rate, through
// the persistent allocation engine.
func onlineTable(cfg config) {
	spec := exp.OnlineSpec{
		Hosts: cfg.hosts, COV: 0.5,
		Rates:   []float64{2, 4, 8, 12},
		Horizon: 100, Epoch: 5,
		MaxErr: 0.2, Threshold: platform.AdaptiveThreshold,
		Seeds: cfg.seeds,
	}
	if cfg.full {
		spec.Rates = []float64{2, 4, 8, 12, 16, 24}
		spec.Horizon = 400
	}
	start := time.Now()
	rows, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("=== Online platform: steady state vs churn (%d hosts, adaptive threshold, %v) ===\n",
		spec.Hosts, time.Since(start).Round(time.Millisecond))
	fmt.Print(exp.OnlineTable(rows))
}

func shardedTable(cfg config) {
	spec := exp.ShardedSpec{
		Hosts: 16, COV: 0.5,
		Shards:           []int{1, 2, 4},
		ArrivalsPerEpoch: 8,
		Epochs:           40,
		Seeds:            cfg.seeds,
	}
	if cfg.full {
		spec.Hosts = 64
		spec.Shards = []int{1, 2, 4, 8}
		spec.ArrivalsPerEpoch = 24
		spec.Epochs = 120
	}
	start := time.Now()
	rows, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("=== Sharded tier: churn vs placement-domain count (%d hosts, %v) ===\n",
		spec.Hosts, time.Since(start).Round(time.Millisecond))
	fmt.Print(exp.ShardedTable(rows))
}

func recoveryTable(cfg config) {
	spec := recovery.Spec{
		Hosts:         cfg.hosts,
		Ops:           []int{200, 1000},
		SnapshotEvery: []int{-1, 64, 256},
	}
	if cfg.full {
		spec.Ops = []int{1000, 5000, 20000}
		spec.SnapshotEvery = []int{-1, 256, 1024, 4096}
	}
	start := time.Now()
	rows, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("=== Durable tier: recovery time vs log length and snapshot interval (%d hosts, %v) ===\n",
		spec.Hosts, time.Since(start).Round(time.Millisecond))
	fmt.Print(recovery.Table(rows))
}
