// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5–§6) at benchmark-friendly scale, plus the ablation benches called out
// in DESIGN.md. Full-scale regeneration lives in cmd/experiments (-full).
package vmalloc

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"vmalloc/internal/exp"
	"vmalloc/internal/greedy"
	"vmalloc/internal/hvp"
	"vmalloc/internal/journal"
	"vmalloc/internal/lp"
	"vmalloc/internal/milp"
	"vmalloc/internal/obs"
	"vmalloc/internal/platform"
	"vmalloc/internal/presolve"
	"vmalloc/internal/relax"
	"vmalloc/internal/sched"
	"vmalloc/internal/trace"
	"vmalloc/internal/vec"
	"vmalloc/internal/vp"
	"vmalloc/internal/workload"
)

// benchGrid is the reduced instance family shared by the table benches.
func benchGrid(services int) []workload.Scenario {
	return exp.GridSpec{
		Hosts:    8,
		Services: []int{services},
		COVs:     []float64{0, 0.5, 1.0},
		Slacks:   []float64{0.5},
		Seeds:    []int64{1, 2},
	}.Scenarios()
}

// BenchmarkTable1PairwiseComparison regenerates the Table 1 pairwise
// (Y_{A,B}, S_{A,B}) matrix over METAGREEDY/METAVP/METAHVP/METAHVPLIGHT.
func BenchmarkTable1PairwiseComparison(b *testing.B) {
	scns := benchGrid(32)
	names := []string{exp.NameMetaGreedy, exp.NameMetaVP, exp.NameMetaHVP, exp.NameMetaHVPLight}
	for i := 0; i < b.N; i++ {
		rs := (&exp.Runner{}).Run(scns, exp.HeuristicRoster(1e-3))
		_ = rs.Table1(names)
	}
}

// lpPaperGrid is the paper-scale LP tier: well past the reduced sizes the
// dense simplex was limited to (the sparse warm-started revised simplex
// replaces GLPK).
func lpPaperGrid() []workload.Scenario {
	return exp.GridSpec{
		Hosts: 8, Services: []int{64}, COVs: []float64{0, 0.5, 1.0},
		Slacks: []float64{0.5}, Seeds: []int64{1, 2},
	}.Scenarios()
}

// BenchmarkTable1LPRounding regenerates the RRND/RRNZ rows of Table 1 at the
// paper-scale LP tier. The roster shares a warm-start cache: RRNZ re-solves
// each relaxation from the basis RRND left behind.
func BenchmarkTable1LPRounding(b *testing.B) {
	scns := lpPaperGrid()
	for i := 0; i < b.N; i++ {
		rs := (&exp.Runner{}).Run(scns, exp.LPRoster(1))
		_ = rs.Table1([]string{exp.NameRRND, exp.NameRRNZ})
	}
}

// BenchmarkLPSparseVsDense solves the Eqs. 1–7 relaxations of the
// paper-scale LP grid with the dense tableau simplex and the sparse revised
// simplex; the ratio of the two sub-benchmarks is the sparse-path speedup
// tracked across PRs.
func BenchmarkLPSparseVsDense(b *testing.B) {
	var encs []*relax.Encoding
	for _, scn := range lpPaperGrid() {
		encs = append(encs, relax.Encode(workload.Generate(scn)))
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, enc := range encs {
				if _, err := lp.Solve(enc.LP); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, enc := range encs {
				if _, err := lp.SolveSparse(enc.LP); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestPaperScaleLPSparseVsDense cross-validates the two solver paths on the
// full paper-scale LP grid (objectives within 1e-6) and asserts the sparse
// path's aggregate ≥5× speedup; the timing half is skipped in -short mode
// and under the race detector, where instrumentation and machine load make
// wall-clock assertions flaky.
func TestPaperScaleLPSparseVsDense(t *testing.T) {
	var denseTotal, sparseTotal time.Duration
	for _, scn := range lpPaperGrid() {
		enc := relax.Encode(workload.Generate(scn))
		start := time.Now()
		dense, err := lp.Solve(enc.LP)
		denseTotal += time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		sparse, err := lp.SolveSparse(enc.LP)
		sparseTotal += time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != sparse.Status {
			t.Fatalf("%+v: status dense=%v sparse=%v", scn, dense.Status, sparse.Status)
		}
		if math.Abs(dense.Objective-sparse.Objective) > 1e-6 {
			t.Fatalf("%+v: objective dense=%v sparse=%v", scn, dense.Objective, sparse.Objective)
		}
	}
	if testing.Short() || raceEnabled {
		return
	}
	if speedup := float64(denseTotal) / float64(sparseTotal); speedup < 5 {
		t.Fatalf("sparse simplex only %.1fx faster than dense on the paper-scale grid (dense %v, sparse %v), want >= 5x",
			speedup, denseTotal, sparseTotal)
	}
}

// lpRosterRun drives the RRND/RRNZ roster over scenarios with the given
// relaxation backend installed (single worker, so timings compare cleanly).
func lpRosterRun(scns []workload.Scenario, be lp.Backend) *exp.ResultSet {
	prev := relax.SetBackend(be)
	defer relax.SetBackend(prev)
	return (&exp.Runner{Workers: 1, DisableAllocStats: true}).Run(scns, exp.LPRoster(1))
}

// BenchmarkLPRosterPresolve times the paper-scale RRND/RRNZ roster through
// the warm-start-only sparse simplex versus the presolving backend (the
// default). The presolve sub-bench's edge over warmonly is the reduction
// pipeline's payoff — Eq. 3/Eq. 7 substitutions eliminate every phase-1
// artificial, so reduced models solve in a single phase — and is gated by
// TestLPRosterPresolveSpeedup and archived in BENCH_lp.json.
func BenchmarkLPRosterPresolve(b *testing.B) {
	scns := lpPaperGrid()
	b.Run("warmonly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lpRosterRun(scns, lp.Simplex{})
		}
	})
	b.Run("presolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lpRosterRun(scns, presolve.Backend{})
		}
	})
}

// TestLPRosterPresolveSpeedup is the CI perf gate for the presolve tier on
// the paper-scale (8 hosts x 64 services) LP grid. Equivalence half: the
// presolving backend must reach the warm-start-only simplex's optimal
// objective on every relaxation to 1e-9 (the optimal vertex may differ —
// these degenerate LPs have alternative optima — so the rounded roster
// yields are not compared) and its warm token must actually warm-start the
// RRNZ-style re-solve. Timing half: the presolved RRND/RRNZ roster must run
// >= 1.5x faster; skipped in -short mode and under the race detector, like
// the other wall-clock gates.
func TestLPRosterPresolveSpeedup(t *testing.T) {
	scns := lpPaperGrid()
	pre := presolve.Backend{}
	for i, scn := range scns {
		enc := relax.Encode(workload.Generate(scn))
		plainSol, err := lp.Simplex{}.Solve(enc.LP)
		if err != nil {
			t.Fatal(err)
		}
		preSol, err := pre.Solve(enc.LP)
		if err != nil {
			t.Fatal(err)
		}
		if plainSol.Status != preSol.Status {
			t.Fatalf("scenario %d: status %v (warmonly) vs %v (presolve)", i, plainSol.Status, preSol.Status)
		}
		if plainSol.Status != lp.Optimal {
			continue
		}
		if math.Abs(plainSol.Objective-preSol.Objective) > 1e-9*(1+math.Abs(plainSol.Objective)) {
			t.Fatalf("scenario %d: objective %v (warmonly) vs %v (presolve)", i, plainSol.Objective, preSol.Objective)
		}
		warm, err := pre.SolveWarm(enc.LP, preSol.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.WarmStarted {
			t.Fatalf("scenario %d: presolve warm token did not install on an identical re-solve", i)
		}
		if math.Abs(warm.Objective-preSol.Objective) > 1e-9*(1+math.Abs(preSol.Objective)) {
			t.Fatalf("scenario %d: warm objective %v vs cold %v", i, warm.Objective, preSol.Objective)
		}
	}

	if testing.Short() || raceEnabled {
		return
	}
	const runs = 3
	timeBest := func(be lp.Backend) time.Duration {
		best := time.Duration(math.MaxInt64)
		for i := 0; i < runs; i++ {
			start := time.Now()
			_ = lpRosterRun(scns, be)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	plainElapsed := timeBest(lp.Simplex{})
	preElapsed := timeBest(pre)
	speedup := float64(plainElapsed) / float64(preElapsed)
	t.Logf("LP roster paper scale: warmonly %v, presolve %v (%.2fx)", plainElapsed, preElapsed, speedup)
	if speedup < 1.5 {
		t.Fatalf("presolved LP roster only %.2fx faster than warm-start-only (warmonly %v, presolve %v), want >= 1.5x",
			speedup, plainElapsed, preElapsed)
	}
}

// BenchmarkTable2Runtimes times each Table 2 algorithm on one representative
// instance per service count, the quantity the paper reports in seconds.
func BenchmarkTable2Runtimes(b *testing.B) {
	for _, services := range []int{25, 50, 100} {
		p := workload.Generate(workload.Scenario{
			Hosts: 8, Services: services, COV: 0.5, Slack: 0.5, Seed: 1,
		})
		for _, algo := range exp.HeuristicRoster(1e-3) {
			b.Run(fmt.Sprintf("%s/%dtasks", algo.Name, services), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = algo.Run(p)
				}
			})
		}
	}
}

// figBench runs the Figures 2–4 series (yield difference from METAHVP vs
// COV) for the given heterogeneity mode.
func figBench(b *testing.B, mode workload.HeterogeneityMode) {
	scns := exp.GridSpec{
		Hosts: 8, Services: []int{40},
		COVs: []float64{0, 0.3, 0.6, 0.9}, Slacks: []float64{0.3},
		Seeds: []int64{1, 2}, Mode: mode,
	}.Scenarios()
	names := []string{exp.NameMetaGreedy, exp.NameMetaVP}
	for i := 0; i < b.N; i++ {
		rs := (&exp.Runner{}).Run(scns, exp.HeuristicRoster(1e-3))
		_ = rs.FigureYieldVsCOV(names, exp.NameMetaHVP)
	}
}

// BenchmarkFig2YieldVsCOV regenerates the Figure 2 series (fully
// heterogeneous platforms; the appendix figures 8–34 vary slack/services).
func BenchmarkFig2YieldVsCOV(b *testing.B) { figBench(b, workload.HeteroBoth) }

// BenchmarkFig3CPUHomogeneous regenerates Figure 3 (CPU held homogeneous).
func BenchmarkFig3CPUHomogeneous(b *testing.B) { figBench(b, workload.HeteroCPUHomogeneous) }

// BenchmarkFig4MemHomogeneous regenerates Figure 4 (memory held homogeneous).
func BenchmarkFig4MemHomogeneous(b *testing.B) { figBench(b, workload.HeteroMemHomogeneous) }

// errBench runs the Figures 5–7 error-mitigation series at the given service
// count (the appendix figures 35–66 vary slack and COV).
func errBench(b *testing.B, services int) {
	e := &exp.ErrorExperiment{
		Scenarios: []workload.Scenario{
			{Hosts: 8, Services: services, COV: 0.5, Slack: 0.4, Seed: 1},
			{Hosts: 8, Services: services, COV: 0.5, Slack: 0.4, Seed: 2},
		},
		MaxErrors:  []float64{0, 0.1, 0.3},
		Thresholds: []float64{0, 0.1, 0.3},
		SeedSalt:   0x5eed,
	}
	for i := 0; i < b.N; i++ {
		curves := e.Run()
		_ = exp.FigureErrorCurves(curves, e.Thresholds)
	}
}

// BenchmarkFig5ErrorMitigation100 regenerates the Figure 5 series (smallest
// service count: few large services).
func BenchmarkFig5ErrorMitigation100(b *testing.B) { errBench(b, 16) }

// BenchmarkFig6ErrorMitigation250 regenerates the Figure 6 series.
func BenchmarkFig6ErrorMitigation250(b *testing.B) { errBench(b, 40) }

// BenchmarkFig7ErrorMitigation500 regenerates the Figure 7 series (many
// small services).
func BenchmarkFig7ErrorMitigation500(b *testing.B) { errBench(b, 80) }

// vpPaperProblem is the paper-scale heuristic-tier instance: 16 hosts and
// 128 services puts it above the largest service count the paper times in
// Table 2.
func vpPaperProblem() *Problem {
	return workload.Generate(workload.Scenario{
		Hosts: 16, Services: 128, COV: 0.5, Slack: 0.4, Seed: 1,
	})
}

// BenchmarkMetaHeuristicsPaperScale times the full meta-heuristic roster on
// the paper-scale instance with allocation reporting; cmd/benchjson turns
// this into the BENCH_vp.json trajectory CI archives.
func BenchmarkMetaHeuristicsPaperScale(b *testing.B) {
	p := vpPaperProblem()
	runs := []struct {
		name string
		run  func()
	}{
		{"METAVP", func() { _ = vp.MetaVP(p, 1e-3) }},
		{"METAHVP", func() { _ = hvp.MetaHVP(p, 1e-3) }},
		{"METAHVPLIGHT", func() { _ = hvp.MetaHVPLight(p, 1e-3) }},
		{"METAHVP-PAR", func() { _ = hvp.MetaHVPParallel(p, 1e-3, 0) }},
		{"METAGREEDY", func() { _ = greedy.MetaGreedy(p, false) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.run()
			}
		})
	}
}

// BenchmarkSolverPackPaperScale measures one steady-state Pack per strategy
// family on a warm solver arena: the allocs/op column is the acceptance bar
// (<= 2; 0 in practice).
func BenchmarkSolverPackPaperScale(b *testing.B) {
	p := vpPaperProblem()
	io := vp.Order{Metric: vec.MetricSum, Descending: true}
	bo := vp.Order{Metric: vec.MetricLex}
	for _, tc := range []struct {
		name string
		c    vp.Config
	}{
		{"FF", vp.Config{Alg: vp.FirstFit, ItemOrder: io, BinOrder: bo, Hetero: true}},
		{"BF", vp.Config{Alg: vp.BestFit, ItemOrder: io, Hetero: true}},
		{"PP", vp.Config{Alg: vp.PermutationPack, ItemOrder: io, BinOrder: bo, Hetero: true}},
		{"CP", vp.Config{Alg: vp.ChoosePack, ItemOrder: io, BinOrder: bo, Hetero: true, Window: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := vp.NewSolver(p)
			s.Pack(0.5, tc.c)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = s.Pack(0.5, tc.c)
			}
		})
	}
}

// TestPaperScaleMetaHVPSpeedup pins the tentpole acceptance criteria: on the
// paper-scale instance the arena-backed METAHVP must (a) agree bit-for-bit
// with the retained naive reference — same probe sequence, identical
// MinYield — and (b) run at least 5x faster. The timing half is skipped in
// -short mode and under the race detector, where instrumentation makes
// wall-clock assertions flaky.
func TestPaperScaleMetaHVPSpeedup(t *testing.T) {
	p := vpPaperProblem()
	configs := hvp.Strategies()
	timing := !testing.Short() && !raceEnabled

	// Min of three runs per side (the standard noise-robust estimator, so a
	// transient scheduler hiccup cannot flake the ratio assertion) — but only
	// when the timing assertion will actually run; the equivalence half
	// needs one run per side.
	runs := 1
	if timing {
		runs = 3
	}
	timeBest := func(f func() *Result) (*Result, time.Duration) {
		var res *Result
		best := time.Duration(math.MaxInt64)
		for i := 0; i < runs; i++ {
			start := time.Now()
			res = f()
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return res, best
	}
	fast, fastElapsed := timeBest(func() *Result { return vp.MetaConfigs(p, configs, 1e-3) })
	naive, naiveElapsed := timeBest(func() *Result { return vp.MetaConfigsNaive(p, configs, 1e-3) })

	if fast.Solved != naive.Solved {
		t.Fatalf("solved mismatch: solver=%v naive=%v", fast.Solved, naive.Solved)
	}
	if fast.Solved && math.Abs(fast.MinYield-naive.MinYield) > 1e-9 {
		t.Fatalf("MinYield solver=%v naive=%v", fast.MinYield, naive.MinYield)
	}
	if !timing {
		return
	}
	speedup := float64(naiveElapsed) / float64(fastElapsed)
	t.Logf("METAHVP paper scale: naive %v, arena %v (%.1fx)", naiveElapsed, fastElapsed, speedup)
	if speedup < 5 {
		t.Fatalf("arena METAHVP only %.1fx faster than the naive reference (naive %v, arena %v), want >= 5x",
			speedup, naiveElapsed, fastElapsed)
	}
}

// BenchmarkMetaHVPLightSpeedup reproduces the §5.1 run-time comparison:
// METAHVP vs METAHVPLIGHT on the same instance (512×2000 in the paper,
// reduced here).
func BenchmarkMetaHVPLightSpeedup(b *testing.B) {
	p := workload.Generate(workload.Scenario{
		Hosts: 16, Services: 120, COV: 0.5, Slack: 0.4, Seed: 1,
	})
	b.Run("METAHVP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hvp.MetaHVP(p, 1e-3)
		}
	})
	b.Run("METAHVPLIGHT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hvp.MetaHVPLight(p, 1e-3)
		}
	})
}

// BenchmarkTheorem1TightInstance evaluates EQUALWEIGHTS on the tight
// instance of Theorem 1 (n_1 = 1, n_j = 1/J).
func BenchmarkTheorem1TightInstance(b *testing.B) {
	const J = 64
	needs := make([]float64, J)
	needs[0] = 1
	for j := 1; j < J; j++ {
		needs[j] = 1.0 / J
	}
	nc := &sched.NodeCPU{
		Capacity: 1, Req: make([]float64, J),
		Estimated: make([]float64, J), TrueNeed: needs,
	}
	for i := 0; i < b.N; i++ {
		_ = nc.MinYield(sched.EqualWeights)
	}
}

// BenchmarkMILPvsHeuristics reproduces the §3.2 workflow on a tiny
// instance: exact branch-and-bound optimum, its rational upper bound, and
// the METAHVP approximation.
func BenchmarkMILPvsHeuristics(b *testing.B) {
	p := workload.Generate(workload.Scenario{
		Hosts: 3, Services: 6, COV: 0.5, Slack: 0.6, Seed: 1,
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relax.SolveExact(p, &milp.Options{MaxNodes: 5000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relaxation-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relax.UpperBound(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("METAHVP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hvp.MetaHVP(p, 1e-3)
		}
	})
}

// BenchmarkAblationPPKeyMapping compares the paper's improved O(J²D)
// Permutation-Pack against the naive Leinberger D!-list reference. The gap
// appears with dimension count (D! candidate keys to probe), so the bench
// uses a 4-resource instance (24 keys) as well as the paper's 2-D case.
func BenchmarkAblationPPKeyMapping(b *testing.B) {
	p2 := workload.Generate(workload.Scenario{
		Hosts: 8, Services: 64, COV: 0.5, Slack: 0.5, Seed: 1,
	})
	p4 := fourDimProblem(8, 64)
	io := vp.Order{Metric: vec.MetricSum, Descending: true}
	for _, tc := range []struct {
		name string
		p    *Problem
		y    float64
	}{{"D=2", p2, 0.5}, {"D=4", p4, 0}} {
		b.Run("keyed/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = vp.Pack(tc.p, tc.y, vp.Config{Alg: vp.PermutationPack, ItemOrder: io, BinOrder: vp.NoOrder})
			}
		})
		b.Run("naive/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = vp.PackPermutationNaive(tc.p, tc.y, io, vp.NoOrder)
			}
		})
	}
}

// BenchmarkAblationWindowSize varies the Permutation-Pack window on a
// 4-dimensional instance, where windows smaller than D actually prune the
// key comparison.
func BenchmarkAblationWindowSize(b *testing.B) {
	p := fourDimProblem(8, 64)
	io := vp.Order{Metric: vec.MetricSum, Descending: true}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = vp.Pack(p, 0, vp.Config{Alg: vp.PermutationPack, ItemOrder: io, Window: w})
			}
		})
	}
}

// BenchmarkAblationYieldTolerance varies the binary-search tolerance around
// the paper's 1e-4 default.
func BenchmarkAblationYieldTolerance(b *testing.B) {
	p := workload.Generate(workload.Scenario{
		Hosts: 8, Services: 48, COV: 0.5, Slack: 0.5, Seed: 1,
	})
	for _, tol := range []float64{1e-2, 1e-3, 1e-4} {
		b.Run(fmt.Sprintf("tol=%g", tol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = hvp.MetaHVPLight(p, tol)
			}
		})
	}
}

// BenchmarkPlatformSimulation runs the §8 dynamic hosting simulation (the
// platform package) for a short horizon with METAHVPLIGHT reallocation and
// the adaptive threshold controller.
func BenchmarkPlatformSimulation(b *testing.B) {
	nodes := workload.Platform(workload.Scenario{Hosts: 8, COV: 0.5, Seed: 1},
		randNew(1))
	cfg := platform.Config{
		Nodes:        nodes,
		ArrivalRate:  2,
		MeanLifetime: 5,
		Horizon:      30,
		Epoch:        3,
		MaxErr:       0.2,
		Threshold:    platform.AdaptiveThreshold,
		Seed:         1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := platform.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// steadyCluster builds a cluster at the acceptance-criteria steady state —
// the 16-host platform hosting the ~80 services a rate-8 / lifetime-10
// arrival process sustains — and warms it with one reallocation. The service
// stream is seeded, so every variant sees the identical cluster history
// (their placers are result-identical by construction).
func steadyCluster(tb testing.TB, opts *ClusterOptions) (*Cluster, *rand.Rand, []int) {
	tb.Helper()
	nodes := workload.Platform(workload.Scenario{
		Hosts: 16, COV: 0.5, Mode: workload.HeteroBoth, Seed: 1,
	}, randNew(1))
	c, err := NewCluster(nodes, opts)
	if err != nil {
		tb.Fatal(err)
	}
	totalCPU := 0.0
	for _, n := range nodes {
		totalCPU += n.Aggregate[0]
	}
	rng := randNew(7)
	meanNeed := 0.7 * totalCPU / 80
	var ids []int
	for len(ids) < 80 {
		if id, ok, _ := c.Add(steadyService(rng, meanNeed)); ok {
			ids = append(ids, id)
		}
	}
	if ep := c.Reallocate(); !ep.Result.Solved {
		tb.Fatal("steady-state warmup epoch failed")
	}
	return c, rng, ids
}

// steadyService draws one service sized for the steady-state benchmark.
func steadyService(rng *rand.Rand, meanNeed float64) Service {
	mem := math.Exp(rng.NormFloat64()*0.8-3.0) * 0.5
	if mem < 0.001 {
		mem = 0.001
	}
	need := meanNeed * (0.5 + rng.Float64())
	return Service{
		ReqElem: Of(0.01, mem), ReqAgg: Of(0.01, mem),
		NeedElem: Of(need/4, 0), NeedAgg: Of(need, 0),
	}
}

// churnCluster departs k seeded-random services and admits k fresh ones —
// one inter-epoch interval of the steady-state arrival process.
func churnCluster(tb testing.TB, c *Cluster, rng *rand.Rand, ids []int, k int, meanNeed float64) []int {
	tb.Helper()
	for i := 0; i < k && len(ids) > 0; i++ {
		j := rng.Intn(len(ids))
		c.Remove(ids[j])
		ids = append(ids[:j], ids[j+1:]...)
	}
	for i := 0; i < k; i++ {
		if id, ok, _ := c.Add(steadyService(rng, meanNeed)); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// epochVariants are the three epoch-reallocation paths the BENCH_platform
// trajectory tracks: the rebuild-per-epoch baseline (fresh METAHVPLIGHT
// solver each epoch — the pre-engine hot path), the persistent sequential
// engine, and the deterministic parallel engine. All three compute
// bit-identical placements, so ns/op and allocs/op are directly comparable.
func epochVariants() []struct {
	name string
	opts *ClusterOptions
} {
	return []struct {
		name string
		opts *ClusterOptions
	}{
		{"rebuild", &ClusterOptions{Placer: func(p *Problem) *Result { return hvp.MetaHVPLight(p, 0) }}},
		{"engine-seq", nil},
		{"engine-par", &ClusterOptions{Parallel: true}},
	}
}

// BenchmarkEngineEpochRealloc measures one steady-state epoch (churn of 4
// services + full reallocation) at the acceptance scale: 16 hosts, ~80 live
// services. The engine-seq/rebuild ratio is the arena-reuse win, the
// engine-par/rebuild ratio the deterministic-parallel win (worker count =
// GOMAXPROCS, so single-core CI shards report parity there).
func BenchmarkEngineEpochRealloc(b *testing.B) {
	for _, tc := range epochVariants() {
		b.Run(tc.name, func(b *testing.B) {
			c, rng, ids := steadyCluster(b, tc.opts)
			meanNeed := 0.7 * 16.0 / 80 // matches steadyCluster sizing closely enough for churn
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids = churnCluster(b, c, rng, ids, 4, meanNeed)
				if ep := c.Reallocate(); !ep.Result.Solved {
					b.Fatal("epoch failed")
				}
			}
		})
	}
}

// TestEngineEpochSpeedup pins the epoch-reuse acceptance criterion: at the
// steady state above, reallocation through the parallel engine must beat the
// rebuild-per-epoch baseline by >= 3x when enough cores are available (the
// strategy sweep parallelizes near-linearly; the golden-trajectory tests
// prove the results identical). The timing assertion is skipped in -short
// mode, under the race detector, and below 4 usable cores, where the
// parallel engine degenerates to the sequential one; BENCH_platform.json
// still records all three variants there.
func TestEngineEpochSpeedup(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing assertion skipped in -short/race modes")
	}
	procs := runtime.GOMAXPROCS(0)
	epochTime := func(opts *ClusterOptions) time.Duration {
		c, rng, ids := steadyCluster(t, opts)
		meanNeed := 0.7 * 16.0 / 80
		const epochs = 20
		best := time.Duration(math.MaxInt64)
		// Min-of-batches: each batch is a fixed churn+realloc sequence, so a
		// transient scheduler hiccup cannot flake the ratio.
		for batch := 0; batch < 3; batch++ {
			start := time.Now()
			for i := 0; i < epochs; i++ {
				ids = churnCluster(t, c, rng, ids, 4, meanNeed)
				if ep := c.Reallocate(); !ep.Result.Solved {
					t.Fatal("epoch failed")
				}
			}
			if el := time.Since(start) / epochs; el < best {
				best = el
			}
		}
		return best
	}
	variants := epochVariants()
	rebuild := epochTime(variants[0].opts)
	seq := epochTime(variants[1].opts)
	par := epochTime(variants[2].opts)
	t.Logf("steady-state epoch: rebuild %v, engine-seq %v (%.2fx), engine-par %v (%.2fx, %d procs)",
		rebuild, seq, float64(rebuild)/float64(seq), par, float64(rebuild)/float64(par), procs)
	if seq > rebuild*3/2 {
		t.Fatalf("persistent sequential engine regressed vs rebuild baseline: %v vs %v", seq, rebuild)
	}
	if procs < 4 {
		t.Skipf("%d usable cores: parallel speedup assertion needs >= 4", procs)
	}
	// The sweep parallelizes near-linearly, but load imbalance (PP packs cost
	// a multiple of FF packs) eats into the ratio on narrow machines: demand
	// the full 3x only where headroom exists.
	want := 2.0
	if procs >= 6 {
		want = 3.0
	}
	if speedup := float64(rebuild) / float64(par); speedup < want {
		t.Fatalf("parallel engine epoch only %.2fx faster than the rebuild baseline (rebuild %v, engine-par %v, %d procs), want >= %.0fx",
			speedup, rebuild, par, procs, want)
	}
}

// shardedBenchCluster builds a K-shard cluster at the sharded-tier
// acceptance scale — 64 hosts, 512 live services — and returns the live
// ids.
func shardedBenchCluster(tb testing.TB, shards int) (*ShardedCluster, *rand.Rand, []int) {
	tb.Helper()
	c, err := NewShardedCluster(clusterNodes(64), &ShardedOptions{Shards: shards, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ids := make([]int, 0, 512)
	for len(ids) < 512 {
		id, ok, err := c.Add(clusterService(rng))
		if err != nil {
			tb.Fatal(err)
		}
		if !ok {
			tb.Fatal("sharded bench park rejected an admission; resize the workload")
		}
		ids = append(ids, id)
	}
	if ep := c.Reallocate(); !ep.Result.Solved {
		tb.Fatal("warmup epoch failed")
	}
	return c, rng, ids
}

// shardedChurnNeeds perturbs the fluid needs of n services, the steady-state
// churn between sharded epochs.
func shardedChurnNeeds(tb testing.TB, c *ShardedCluster, rng *rand.Rand, ids []int, n int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		id := ids[rng.Intn(len(ids))]
		need := rng.Float64() * 0.25
		nv := Of(need, 0)
		if err := c.UpdateNeeds(id, Of(need/4, 0), nv.Clone(), Of(need/4, 0), nv.Clone()); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkShardedEpoch measures one steady-state reallocation epoch (churn
// of 8 need updates + scatter-gather reallocate) at 64 hosts x 512 live
// services, across 1, 2 and 4 placement domains. Sharding wins twice: the
// domains solve concurrently, and each solves a smaller packing instance —
// so shards=4 leads even on one core, and scales with cores beyond that.
func BenchmarkShardedEpoch(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			c, rng, ids := shardedBenchCluster(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shardedChurnNeeds(b, c, rng, ids, 8)
				if ep := c.Reallocate(); !ep.Result.Solved {
					b.Fatal("epoch failed")
				}
			}
		})
	}
}

// TestShardedEpochSpeedup pins the sharded-tier acceptance criterion: at 64
// hosts x 512 services, epochs over 4 placement domains must run >= 2x
// faster than over one domain when at least 4 cores are available (below
// that the assertion is skipped — the scatter-gather win needs cores,
// though the smaller per-domain instances usually win even single-core;
// BENCH_shard.json records the trajectory either way).
func TestShardedEpochSpeedup(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing assertion skipped in -short/race modes")
	}
	epochTime := func(k int) time.Duration {
		c, rng, ids := shardedBenchCluster(t, k)
		const epochs = 6
		best := time.Duration(math.MaxInt64)
		// Min-of-batches: a transient scheduler hiccup cannot flake the
		// ratio.
		for batch := 0; batch < 3; batch++ {
			start := time.Now()
			for i := 0; i < epochs; i++ {
				shardedChurnNeeds(t, c, rng, ids, 8)
				if ep := c.Reallocate(); !ep.Result.Solved {
					t.Fatal("epoch failed")
				}
			}
			if el := time.Since(start) / epochs; el < best {
				best = el
			}
		}
		return best
	}
	one := epochTime(1)
	four := epochTime(4)
	procs := runtime.GOMAXPROCS(0)
	t.Logf("sharded epoch 64x512: shards=1 %v, shards=4 %v (%.2fx, %d procs)", one, four,
		float64(one)/float64(four), procs)
	if four > one*3/2 {
		t.Fatalf("sharded epochs regressed: shards=4 %v vs shards=1 %v", four, one)
	}
	if procs < 4 {
		t.Skipf("%d usable cores: sharded speedup assertion needs >= 4", procs)
	}
	if speedup := float64(one) / float64(four); speedup < 2.0 {
		t.Fatalf("4-shard epoch only %.2fx faster than 1-shard (shards=1 %v, shards=4 %v, %d procs), want >= 2x",
			speedup, one, four, procs)
	}
}

// shardedEpochCtx runs one steady-state epoch, optionally under a live
// trace: churn 8 needs, reallocate through the context-carrying path, and
// finish the trace the way the HTTP middleware would.
func shardedEpochCtx(tb testing.TB, c *ShardedCluster, rng *rand.Rand, ids []int, tracer *obs.Tracer) {
	tb.Helper()
	shardedChurnNeeds(tb, c, rng, ids, 8)
	ctx := context.Background()
	tr := tracer.StartTrace("POST /v1/reallocate", "")
	if tr != nil {
		ctx = obs.ContextWithSpan(ctx, tr.Root())
	}
	ep := c.ReallocateCtx(ctx)
	tr.Finish(200)
	if !ep.Result.Solved {
		tb.Fatal("epoch failed")
	}
}

// BenchmarkShardedEpochTracing measures the tracing tax on the steady-state
// sharded epoch at acceptance scale (64 hosts x 512 services, 4 domains):
// tracing=off uses a nil tracer (the -trace-ring -1 path, zero-value spans
// throughout), tracing=on runs every epoch under a live trace with per-shard
// spans. The two must stay within a few percent of each other —
// TestShardedEpochTracingOverhead gates the ratio.
func BenchmarkShardedEpochTracing(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("tracing=%v", traced), func(b *testing.B) {
			c, rng, ids := shardedBenchCluster(b, 4)
			var tracer *obs.Tracer
			if traced {
				tracer = obs.NewTracer(0, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shardedEpochCtx(b, c, rng, ids, tracer)
			}
		})
	}
}

// TestShardedEpochTracingOverhead pins the observability acceptance
// criterion: a fully traced sharded epoch (root span, per-shard epoch
// spans, trace-ring insertion) must stay within 5% of the untraced epoch at
// 64 hosts x 512 services. Two clusters run the same seeded churn, so
// epoch i does identical solver work on both; each iteration times the pair
// back to back (alternating which side goes first) and the gate is the
// *median* of the per-pair traced/untraced ratios — a scheduler spike hits
// one epoch of one pair and moves one ratio, which the median shrugs off.
// That robustness is what lets a 5% bound hold on narrow shared CI runners.
func TestShardedEpochTracingOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing assertion skipped in -short/race modes")
	}
	cPlain, rngPlain, idsPlain := shardedBenchCluster(t, 4)
	cTraced, rngTraced, idsTraced := shardedBenchCluster(t, 4)
	tracer := obs.NewTracer(0, 0)
	timePlain := func() time.Duration {
		start := time.Now()
		shardedEpochCtx(t, cPlain, rngPlain, idsPlain, nil)
		return time.Since(start)
	}
	timeTraced := func() time.Duration {
		start := time.Now()
		shardedEpochCtx(t, cTraced, rngTraced, idsTraced, tracer)
		return time.Since(start)
	}
	const pairs = 40
	ratios := make([]float64, 0, pairs)
	var plainTotal, tracedTotal time.Duration
	for i := 0; i < pairs; i++ {
		var pe, te time.Duration
		if i%2 == 0 {
			pe = timePlain()
			te = timeTraced()
		} else {
			te = timeTraced()
			pe = timePlain()
		}
		plainTotal += pe
		tracedTotal += te
		ratios = append(ratios, float64(te)/float64(pe))
	}
	sort.Float64s(ratios)
	median := ratios[pairs/2]
	t.Logf("sharded epoch 64x512 over %d pairs: untraced mean %v, traced mean %v, median ratio %.4f (%+.2f%%)",
		pairs, plainTotal/pairs, tracedTotal/pairs, median, (median-1)*100)
	if median > 1.05 {
		t.Fatalf("tracing overhead too high: median traced/untraced epoch ratio %.4f (%+.2f%%), want <= 5%%",
			median, (median-1)*100)
	}
}

// BenchmarkTraceIngestion measures the Google-style trace pipeline: parse a
// synthesized trace, extract marginals, generate an instance from them.
func BenchmarkTraceIngestion(b *testing.B) {
	var buf bytes.Buffer
	if err := trace.Write(&buf, trace.Synthesize(1000, 1)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		emp, err := trace.Extract(recs)
		if err != nil {
			b.Fatal(err)
		}
		p := workload.GenerateSampled(workload.Scenario{
			Hosts: 8, Services: 40, COV: 0.5, Slack: 0.4, Seed: 1,
		}, emp)
		if p.NumServices() != 40 {
			b.Fatal("generation failed")
		}
	}
}

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fourDimProblem builds a deterministic 4-resource instance (CPU, memory,
// disk, network) for the window ablation.
func fourDimProblem(h, j int) *Problem {
	p := &Problem{}
	for i := 0; i < h; i++ {
		agg := Of(1, 1, 1, 1)
		p.Nodes = append(p.Nodes, Node{Elementary: agg.Clone(), Aggregate: agg})
	}
	for s := 0; s < j; s++ {
		req := Of(
			0.05+0.02*float64(s%4),
			0.05+0.02*float64((s+1)%4),
			0.05+0.02*float64((s+2)%4),
			0.05+0.02*float64((s+3)%4),
		)
		p.Services = append(p.Services, Service{
			ReqElem: req.Clone(), ReqAgg: req,
			NeedElem: Of(0, 0, 0, 0), NeedAgg: Of(0, 0, 0, 0),
		})
	}
	return p
}

// --- Durable tier: journal append throughput and recovery time ---

// journalBenchRecord is the small mutation-sized record the throughput
// benches append (an UpdateNeeds of a 2-dimensional service, the most common
// record in a churning cluster).
func journalBenchRecord(id int) *journal.Record {
	return &journal.Record{
		Op: journal.OpUpdateNeeds, ID: id,
		Needs: [4]vec.Vec{
			vec.Of(0.25, 0.0625), vec.Of(0.25, 0.0625),
			vec.Of(0.21, 0.0625), vec.Of(0.21, 0.0625),
		},
	}
}

// BenchmarkJournalAppend measures write-ahead-log append throughput under
// concurrent writers: group commit batches everything enqueued while the
// previous batch is flushing into one write+fsync. The records/s metric is
// what BENCH_journal.json tracks.
func BenchmarkJournalAppend(b *testing.B) {
	for _, mode := range []struct {
		name  string
		fsync journal.FsyncMode
	}{
		{"group-fsync", journal.FsyncBatch},
		{"nofsync", journal.FsyncNone},
	} {
		b.Run(mode.name, func(b *testing.B) {
			j, _, err := journal.Open(journal.Options{Dir: b.TempDir(), Fsync: mode.fsync}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.SetParallelism(64) // deep append queues exercise group commit
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rec := journalBenchRecord(1)
				for pb.Next() {
					if err := j.Append(rec); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "records/s")
			}
		})
	}
}

// BenchmarkJournalRecovery measures snapshot+tail replay: each iteration
// recovers a directory holding a fixed-size WAL tail. The
// recovered-records/s metric is the replay throughput the exp recovery
// table sweeps at larger scale.
func BenchmarkJournalRecovery(b *testing.B) {
	const records = 10000
	dir := b.TempDir()
	j, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNone}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := j.Append(journalBenchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		j2, info, err := journal.Open(journal.Options{Dir: dir}, func(r *journal.Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			b.Fatal(err)
		}
		if n != records || info.Replayed != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*records/secs, "recovered-records/s")
	}
}

// TestJournalAppendThroughputGate enforces the durable-tier acceptance
// floor: sustained group-commit appends at >= 100k records/s with fsync
// durability. Group commit is what makes this reachable — with hundreds of
// concurrent appenders every fsync covers a large batch, so the per-record
// cost is dominated by encoding, not the disk. Best-of-3 damps CI noise.
func TestJournalAppendThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate in short mode")
	}
	if raceEnabled {
		t.Skip("throughput gate under the race detector")
	}
	const (
		goroutines = 512
		perG       = 128
		want       = 100_000.0 // records/s
	)
	best := 0.0
	for attempt := 0; attempt < 3 && best < want; attempt++ {
		j, _, err := journal.Open(journal.Options{Dir: t.TempDir(), Fsync: journal.FsyncBatch}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rec := journalBenchRecord(g)
				for i := 0; i < perG; i++ {
					if err := j.Append(rec); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		rate := float64(goroutines*perG) / time.Since(start).Seconds()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}
		t.Logf("attempt %d: %.0f records/s (group commit, fsync per batch)", attempt+1, rate)
		if rate > best {
			best = rate
		}
	}
	if best < want {
		t.Fatalf("group-commit append throughput %.0f records/s, want >= %.0f", best, want)
	}
}
