package vmalloc

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"vmalloc/internal/engine"
	"vmalloc/internal/shard"
	"vmalloc/internal/vec"
)

// ShardedOptions tunes a ShardedCluster. The embedded ClusterOptions
// configure each shard's engine exactly as they would a Cluster; note that
// Parallel there races the solver roster *within* one shard — the shards
// themselves always solve concurrently.
type ShardedOptions struct {
	ClusterOptions
	// Shards is the placement-domain count K (1 <= K <= len(nodes)); 0
	// selects 1. With K=1 the sharded cluster is bit-identical to a
	// Cluster over the same nodes.
	Shards int
	// Seed fixes the deterministic best-of-two-choices admission hash.
	Seed int64
	// RebalanceGap triggers the cross-shard rebalance pass when the
	// bottleneck shard's epoch yield trails the median shard yield by more
	// than this; 0 selects the default (0.1), negative disables.
	RebalanceGap float64
	// RebalanceMoves caps services migrated per rebalance pass; 0 selects
	// the default (2), negative disables.
	RebalanceMoves int
}

func (o *ShardedOptions) shards() int {
	if o.Shards == 0 {
		return 1
	}
	return o.Shards
}

func (o *ShardedOptions) routerConfig(nodes []Node) shard.Config {
	return shard.Config{
		Nodes:      nodes,
		Shards:     o.shards(),
		Seed:       o.Seed,
		Gap:        o.RebalanceGap,
		Moves:      o.RebalanceMoves,
		CPUDim:     o.CPUDim,
		Tol:        o.Tolerance,
		Placer:     engine.Placer(o.Placer),
		Parallel:   o.Parallel,
		Workers:    o.Workers,
		UseLPBound: o.UseLPBound,
		Now:        time.Now,
	}
}

// ShardStat is a point-in-time description of one placement domain.
type ShardStat = shard.Stat

// ShardEvent describes one applied mutation of a single placement domain,
// delivered to the sharded cluster's hook — the sharded counterpart of
// ClusterEvent, extended with the owning shard and, for cross-shard
// rebalance moves, the per-service move generation. Node indices are
// shard-local (each shard's WAL replays onto its own domain); use
// ShardedCluster.Node for the park-global index.
//
// Slice and pointer fields may alias engine buffers valid only for the
// duration of the hook call.
type ShardEvent struct {
	Shard int
	Op    ClusterOp
	// Gen is the move generation (ClusterOpMoveIn, ClusterOpMoveOut).
	Gen uint64

	ID              int
	Node            int
	TrueSvc, EstSvc *Service
	Needs           [4]Vec
	Threshold       float64
	IDs             []int
	Placement       Placement
	Repair          bool
	Budget          int
	Migrations      int
	MinYield        float64
}

// ShardedCluster is the sharded serving tier: the node park partitioned into
// K placement domains, each owning its own persistent engine and solver,
// behind a router that admits services by shard headroom (deterministic
// best-of-two-choices), runs reallocation epochs scatter-gather across the
// domains, and migrates services out of the bottleneck shard when its yield
// trails the median. It offers the Cluster surface plus per-shard
// statistics; like Cluster it is not safe for concurrent use (the epoch
// parallelism is internal).
type ShardedCluster struct {
	r    *shard.Router
	hook func(*ShardEvent)
}

// NewShardedCluster returns an empty sharded cluster over the given node
// park, split into opts.Shards contiguous placement domains.
func NewShardedCluster(nodes []Node, opts *ShardedOptions) (*ShardedCluster, error) {
	if opts == nil {
		opts = &ShardedOptions{}
	}
	r, err := shard.New(opts.routerConfig(nodes))
	if err != nil {
		return nil, err
	}
	c := &ShardedCluster{r: r}
	if err := c.SetThreshold(opts.Threshold); err != nil {
		return nil, err
	}
	return c, nil
}

// SetHook installs fn as the mutation observer (nil uninstalls); see
// Cluster.SetHook. Events carry the owning shard and fire in application
// order. The hook must not call back into the cluster.
func (c *ShardedCluster) SetHook(fn func(*ShardEvent)) {
	c.hook = fn
	if fn == nil {
		c.r.SetHook(nil)
		return
	}
	c.r.SetHook(func(ev *shard.Event) { fn(convertShardEvent(ev)) })
}

func convertShardEvent(ev *shard.Event) *ShardEvent {
	out := &ShardEvent{
		Shard:      ev.Shard,
		Gen:        ev.Gen,
		ID:         ev.ID,
		Node:       ev.Node,
		TrueSvc:    ev.TrueSvc,
		EstSvc:     ev.EstSvc,
		Threshold:  ev.Threshold,
		IDs:        ev.IDs,
		Placement:  ev.Placement,
		Repair:     ev.Repair,
		Budget:     ev.Budget,
		Migrations: ev.Migrations,
		MinYield:   ev.MinYield,
	}
	for i, v := range ev.Needs {
		out.Needs[i] = Vec(v)
	}
	switch ev.Op {
	case shard.OpAdd:
		out.Op = ClusterOpAdd
	case shard.OpRemove:
		out.Op = ClusterOpRemove
	case shard.OpUpdateNeeds:
		out.Op = ClusterOpUpdateNeeds
	case shard.OpSetThreshold:
		out.Op = ClusterOpSetThreshold
	case shard.OpEpoch:
		out.Op = ClusterOpEpoch
	case shard.OpMoveIn:
		out.Op = ClusterOpMoveIn
	case shard.OpMoveOut:
		out.Op = ClusterOpMoveOut
	}
	return out
}

// Add admits a service whose CPU-need estimate is exact; see Cluster.Add.
// The owning shard is recoverable via Shard, the park-global node via Node.
func (c *ShardedCluster) Add(svc Service) (id int, ok bool, err error) {
	return c.AddWithEstimate(svc, svc)
}

// AddWithEstimate admits a service whose scheduler-visible needs differ from
// its true needs; see Cluster.AddWithEstimate.
func (c *ShardedCluster) AddWithEstimate(trueSvc, estSvc Service) (id int, ok bool, err error) {
	if err := validateServiceVecs(c.r.Dim(), "true", trueSvc); err != nil {
		return 0, false, err
	}
	if err := validateServiceVecs(c.r.Dim(), "estimated", estSvc); err != nil {
		return 0, false, err
	}
	id, _, _, ok = c.r.Add(trueSvc, estSvc)
	return id, ok, nil
}

// AddBatch admits entries in order through the deterministic two-choice
// shard router, one routing decision per entry — each admission sees the
// shard headroom left by the previous one, so the batch trajectory (ids,
// shard choices, hook events) is bit-identical to len(entries) sequential
// AddWithEstimate calls. Entries failing validation are reported per-entry
// and skipped; they never abort the rest of the batch. The durable tier
// exploits the grouped pass by journaling each shard's admissions as one
// batch under a single group-commit fsync.
func (c *ShardedCluster) AddBatch(entries []BatchEntry) []BatchResult {
	out := make([]BatchResult, len(entries))
	routed := make([]shard.AddEntry, 0, len(entries))
	idx := make([]int, 0, len(entries))
	for i := range entries {
		if err := validateServiceVecs(c.r.Dim(), "true", entries[i].True); err != nil {
			out[i] = BatchResult{Node: Unplaced, Err: err}
			continue
		}
		if err := validateServiceVecs(c.r.Dim(), "estimated", entries[i].Est); err != nil {
			out[i] = BatchResult{Node: Unplaced, Err: err}
			continue
		}
		routed = append(routed, shard.AddEntry{TrueSvc: entries[i].True, EstSvc: entries[i].Est})
		idx = append(idx, i)
	}
	for k, res := range c.r.AddBatch(routed, make([]shard.AddResult, 0, len(routed))) {
		if res.OK {
			out[idx[k]] = BatchResult{ID: res.ID, Node: res.Node, Admitted: true}
		} else {
			out[idx[k]] = BatchResult{Node: Unplaced}
		}
	}
	return out
}

// Remove departs a live service in O(1). It reports whether id was live.
func (c *ShardedCluster) Remove(id int) bool { return c.r.Remove(id) }

// UpdateNeeds replaces the fluid needs (true and estimated) of a live
// service; see Cluster.UpdateNeeds.
func (c *ShardedCluster) UpdateNeeds(id int, trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg Vec) error {
	d := c.r.Dim()
	for _, vv := range []struct {
		name string
		v    Vec
	}{
		{"true elementary need", trueNeedElem},
		{"true aggregate need", trueNeedAgg},
		{"estimated elementary need", estNeedElem},
		{"estimated aggregate need", estNeedAgg},
	} {
		if err := validateVec(d, vv.name, vv.v); err != nil {
			return err
		}
	}
	if !c.r.UpdateNeeds(id, vec.Vec(trueNeedElem), vec.Vec(trueNeedAgg),
		vec.Vec(estNeedElem), vec.Vec(estNeedAgg)) {
		return fmt.Errorf("vmalloc: %w with id %d", ErrUnknownService, id)
	}
	return nil
}

// SetThreshold sets the §6.2 mitigation threshold on every shard; see
// Cluster.SetThreshold for the validation rationale.
func (c *ShardedCluster) SetThreshold(th float64) error {
	if th < 0 || math.IsNaN(th) || math.IsInf(th, 0) {
		return fmt.Errorf("vmalloc: threshold %g invalid (want a finite value >= 0)", th)
	}
	c.r.SetThreshold(th)
	return nil
}

// Len returns the number of live services across all shards.
func (c *ShardedCluster) Len() int { return c.r.Len() }

// Shards returns the placement-domain count K.
func (c *ShardedCluster) Shards() int { return c.r.Shards() }

// Node returns the park-global node currently hosting id.
func (c *ShardedCluster) Node(id int) (int, bool) { return c.r.Node(id) }

// Shard returns the placement domain owning id.
func (c *ShardedCluster) Shard(id int) (int, bool) { return c.r.Shard(id) }

// NodeRange returns the park-global [lo, hi) node interval of shard s.
func (c *ShardedCluster) NodeRange(s int) (lo, hi int) { return c.r.NodeRange(s) }

// Reallocate runs one reallocation epoch on every shard concurrently and
// merges the outcome; when the bottleneck shard's yield trails the median by
// more than the configured gap, a rebalance pass migrates services out of it
// and re-solves the affected shards. The returned epoch is park-global:
// ascending ids, park-global placement, min yield over shards.
func (c *ShardedCluster) Reallocate() *ClusterEpoch {
	return shardedEpoch(c.r.Reallocate())
}

// ReallocateCtx is Reallocate under a tracing context: each shard's solve
// runs under its own child span of the span carried by ctx. The placement
// trajectory is identical to Reallocate.
func (c *ShardedCluster) ReallocateCtx(ctx context.Context) *ClusterEpoch {
	return shardedEpoch(c.r.ReallocateCtx(ctx))
}

// Repair runs one migration-bounded repair epoch per shard (budget applies
// per shard; negative = unlimited). Repair skips the rebalance pass.
func (c *ShardedCluster) Repair(budget int) *ClusterEpoch {
	return shardedEpoch(c.r.Repair(budget))
}

// RepairCtx is Repair under a tracing context; see ReallocateCtx.
func (c *ShardedCluster) RepairCtx(ctx context.Context, budget int) *ClusterEpoch {
	return shardedEpoch(c.r.RepairCtx(ctx, budget))
}

func shardedEpoch(ep *shard.Epoch) *ClusterEpoch {
	return &ClusterEpoch{
		Result:     ep.Result,
		IDs:        append([]int(nil), ep.IDs...),
		Migrations: ep.Migrations,
		Stats:      ep.Stats,
	}
}

// Snapshot returns a detached park-global copy of the cluster; see
// Cluster.Snapshot.
func (c *ShardedCluster) Snapshot() (*Problem, Placement, []int) { return c.r.Snapshot() }

// MinYield evaluates the achieved minimum yield of the current placement
// under the §6 error model, minimized over non-empty shards. Returns 1 for
// an empty cluster.
func (c *ShardedCluster) MinYield(policy SchedPolicy) float64 { return c.r.MinYield(policy) }

// ShardStats returns per-shard statistics: size, headroom, last epoch
// yield, epoch counters and cross-shard migration counts.
func (c *ShardedCluster) ShardStats() []ShardStat { return c.r.Stats() }

// ShardState returns the durable state of one placement domain: the shard's
// own node slice plus its engine state (services keep their global ids;
// node indices are shard-local). The per-shard states are the snapshot
// payloads of the sharded durable tier.
func (c *ShardedCluster) ShardState(s int) *ClusterState { return shardState(c.r, s) }

// State returns the merged park-global durable state: all nodes in park
// order, services ascending by id with park-global node indices, and the
// concatenated per-node loads. With K=1 it is bit-identical to the State of
// an equivalent Cluster.
func (c *ShardedCluster) State() *ClusterState { return mergedState(c.r) }

// routerView is the read surface shared by a live shard.Router and a
// never-finished shard.Recovery (the replication follower's replay seam).
type routerView interface {
	Shards() int
	Nodes() []Node
	NodeRange(s int) (lo, hi int)
	ShardState(s int) *engine.State
	Threshold() float64
}

// shardState extracts the durable state of one placement domain from a
// router view (see ShardedCluster.ShardState for the representation).
func shardState(r routerView, s int) *ClusterState {
	lo, hi := r.NodeRange(s)
	nodes := cloneNodes(r.Nodes()[lo:hi])
	return &ClusterState{Nodes: nodes, State: *r.ShardState(s)}
}

// mergedState builds the merged park-global durable state from a router
// view (see ShardedCluster.State for the representation).
func mergedState(r routerView) *ClusterState {
	st := &ClusterState{Nodes: cloneNodes(r.Nodes())}
	st.Threshold = r.Threshold()
	for s := 0; s < r.Shards(); s++ {
		es := r.ShardState(s)
		lo, _ := r.NodeRange(s)
		for i := range es.Services {
			if es.Services[i].Node != Unplaced {
				es.Services[i].Node += lo
			}
		}
		st.Services = append(st.Services, es.Services...)
		st.ReqLoads = append(st.ReqLoads, es.ReqLoads...)
		st.NeedLoads = append(st.NeedLoads, es.NeedLoads...)
		if es.NextID > st.NextID {
			st.NextID = es.NextID
		}
	}
	sort.Slice(st.Services, func(i, j int) bool { return st.Services[i].ID < st.Services[j].ID })
	return st
}

func cloneNodes(nodes []Node) []Node {
	out := make([]Node, len(nodes))
	for i, n := range nodes {
		out[i] = Node{Name: n.Name, Elementary: n.Elementary.Clone(), Aggregate: n.Aggregate.Clone()}
	}
	return out
}

// validateVec mirrors the structural checks Problem.Validate applies to one
// vector at the public boundary.
func validateVec(d int, name string, v Vec) error {
	if v.Dim() != d {
		return fmt.Errorf("vmalloc: %s has %d dimensions, want %d", name, v.Dim(), d)
	}
	for dd, x := range v {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("vmalloc: %s has invalid value %g in dimension %d", name, x, dd)
		}
	}
	return nil
}

// validateServiceVecs applies validateVec to all four descriptor vectors of
// a service.
func validateServiceVecs(d int, kind string, svc Service) error {
	for _, vv := range []struct {
		name string
		v    Vec
	}{
		{"elementary requirement", svc.ReqElem},
		{"aggregate requirement", svc.ReqAgg},
		{"elementary need", svc.NeedElem},
		{"aggregate need", svc.NeedAgg},
	} {
		if err := validateVec(d, fmt.Sprintf("%s service %s", kind, vv.name), vv.v); err != nil {
			return err
		}
	}
	return nil
}
